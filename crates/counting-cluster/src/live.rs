//! The live-thread harness: the same state machines, a real
//! [`ChannelTransport`], OS threads and wall-clock time.
//!
//! This is the integration seam the deterministic simulation cannot
//! cover: actual concurrency, `mpsc` channels as the network,
//! millisecond ticks as virtual time. The protocol config's tick values
//! are interpreted as milliseconds here. The harness runs a full
//! cluster lifetime — demand, drain, seal — and audits the result with
//! the same [`GlobalChecker`] the simulation uses.

use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::time::{Duration, Instant};

use crate::check::GlobalChecker;
use crate::coordinator::{Coordinator, CoordinatorDurable};
use crate::message::{Envelope, NodeId, COORDINATOR};
use crate::node::{Node, ProtocolConfig};
use crate::replica::{replica_id, Replica};
use crate::transport::{ChannelTransport, Transport};

/// The outcome of a [`run_live`] cluster lifetime.
#[derive(Debug)]
pub struct LiveReport {
    /// Values handed out (repeats included).
    pub handed: u64,
    /// Distinct values handed out.
    pub unique: u64,
    /// Hand-out counts per worker.
    pub per_node: BTreeMap<NodeId, u64>,
    /// Every violation caught (uniqueness, exact-range, liveness).
    pub violations: Vec<String>,
    /// The coordinator's final cursor.
    pub cursor: u64,
}

/// Control messages the harness sends its worker threads.
enum Ctl {
    Demand(u64),
    Drain,
    Stop,
}

/// Upstream events worker threads report to the harness.
enum Up {
    Hand(NodeId, u64),
    Sealed,
}

/// How long the harness waits for the drain to converge before calling
/// it a liveness violation.
const DRAIN_DEADLINE: Duration = Duration::from_secs(20);

/// Worker loop granularity.
const LOOP_PAUSE: Duration = Duration::from_micros(500);

fn now_ms(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_millis()).unwrap_or(u64::MAX)
}

fn worker_loop(
    mut node: Node,
    start: Instant,
    transport: ChannelTransport,
    net_rx: &Receiver<Envelope>,
    ctl_rx: &Receiver<Ctl>,
    up_tx: &Sender<Up>,
) {
    let id = node.id();
    let mut sealed_reported = false;
    loop {
        let now = now_ms(start);
        while let Ok(env) = net_rx.try_recv() {
            node.on_message(now, env);
        }
        while let Ok(ctl) = ctl_rx.try_recv() {
            match ctl {
                Ctl::Demand(n) => node.demand(now, n),
                Ctl::Drain => node.begin_drain(now),
                Ctl::Stop => return,
            }
        }
        node.on_tick(now);
        transport.send_all(node.take_outbox());
        for value in node.take_handouts() {
            let _ = up_tx.send(Up::Hand(id, value));
        }
        if node.is_sealed_acked() && !sealed_reported {
            sealed_reported = true;
            let _ = up_tx.send(Up::Sealed);
        }
        std::thread::sleep(LOOP_PAUSE);
    }
}

fn coordinator_loop(
    mut coordinator: Coordinator,
    start: Instant,
    transport: ChannelTransport,
    net_rx: &Receiver<Envelope>,
    ctl_rx: &Receiver<Ctl>,
) -> CoordinatorDurable {
    loop {
        let now = now_ms(start);
        while let Ok(env) = net_rx.try_recv() {
            coordinator.on_message(now, env);
        }
        if let Ok(Ctl::Stop) = ctl_rx.try_recv() {
            return coordinator.durable().clone();
        }
        coordinator.on_tick(now);
        transport.send_all(coordinator.take_outbox());
        std::thread::sleep(LOOP_PAUSE);
    }
}

fn replica_loop(
    mut replica: Replica,
    start: Instant,
    transport: ChannelTransport,
    net_rx: &Receiver<Envelope>,
    ctl_rx: &Receiver<Ctl>,
) -> (bool, u64, u64, CoordinatorDurable) {
    loop {
        let now = now_ms(start);
        while let Ok(env) = net_rx.try_recv() {
            replica.on_message(now, env);
        }
        if let Ok(Ctl::Stop) = ctl_rx.try_recv() {
            return (
                replica.is_leader(),
                replica.term(),
                replica.commit(),
                replica.coord().clone(),
            );
        }
        replica.on_tick(now);
        transport.send_all(replica.take_outbox());
        std::thread::sleep(LOOP_PAUSE);
    }
}

/// The router thread standing in for the virtual coordinator id:
/// everything workers address to id 0 is fanned out round-robin across
/// the replica group (a follower forwards to its leader hint).
fn router_loop(
    replicas: u64,
    transport: ChannelTransport,
    net_rx: &Receiver<Envelope>,
    ctl_rx: &Receiver<Ctl>,
) {
    let mut rotation = 0u64;
    loop {
        while let Ok(env) = net_rx.try_recv() {
            let target = replica_id(rotation % replicas);
            rotation += 1;
            transport.send(target, env);
        }
        if let Ok(Ctl::Stop) = ctl_rx.try_recv() {
            return;
        }
        std::thread::sleep(LOOP_PAUSE);
    }
}

/// Runs one live cluster lifetime: `workers` nodes serve
/// `demand_per_node` requests each over real threads and channels, then
/// drain, seal, and face the global audit.
#[must_use]
pub fn run_live(workers: u64, demand_per_node: u64) -> LiveReport {
    // Millisecond-scale timing: brisk heartbeats, a failure detector
    // slack enough that a busy scheduler cannot fake a death.
    let config = ProtocolConfig {
        heartbeat_every: 20,
        retry_after: 40,
        fail_after: 2_000,
        ..ProtocolConfig::default()
    };
    let start = Instant::now();
    let ids: Vec<NodeId> = (1..=workers).collect();
    let mut members = vec![COORDINATOR];
    members.extend(&ids);

    let mut transport = ChannelTransport::new();
    let mut net_rxs: BTreeMap<NodeId, Receiver<Envelope>> = BTreeMap::new();
    for &id in std::iter::once(&COORDINATOR).chain(&ids) {
        let (tx, rx) = channel();
        transport.register(id, tx);
        net_rxs.insert(id, rx);
    }
    let (up_tx, up_rx) = channel();

    let mut ctl_txs: BTreeMap<NodeId, Sender<Ctl>> = BTreeMap::new();
    let mut handles = Vec::new();
    let coordinator_handle = {
        let coordinator = Coordinator::new(config, &ids);
        let transport = transport.clone();
        let net_rx = net_rxs.remove(&COORDINATOR).expect("registered above");
        let (ctl_tx, ctl_rx) = channel();
        ctl_txs.insert(COORDINATOR, ctl_tx);
        std::thread::spawn(move || {
            coordinator_loop(coordinator, start, transport, &net_rx, &ctl_rx)
        })
    };
    for &id in &ids {
        let node = Node::bootstrap(id, config, members.clone());
        let transport = transport.clone();
        let net_rx = net_rxs.remove(&id).expect("registered above");
        let (ctl_tx, ctl_rx) = channel();
        ctl_txs.insert(id, ctl_tx);
        let up_tx = up_tx.clone();
        handles.push(std::thread::spawn(move || {
            worker_loop(node, start, transport, &net_rx, &ctl_rx, &up_tx);
        }));
    }

    // Demand in bursts, so every worker crosses several lease rounds.
    let burst = (demand_per_node / 4).max(1);
    let mut sent: BTreeMap<NodeId, u64> = ids.iter().map(|&id| (id, 0)).collect();
    while sent.values().any(|&s| s < demand_per_node) {
        for &id in &ids {
            let remaining = demand_per_node - sent[&id];
            if remaining > 0 {
                let n = burst.min(remaining);
                let _ = ctl_txs[&id].send(Ctl::Demand(n));
                *sent.get_mut(&id).expect("seeded above") += n;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Drain and wait for every worker to seal.
    for &id in &ids {
        let _ = ctl_txs[&id].send(Ctl::Drain);
    }
    let mut checker = GlobalChecker::new();
    let mut violations = Vec::new();
    let mut per_node: BTreeMap<NodeId, u64> = BTreeMap::new();
    let mut sealed = 0u64;
    let deadline = Instant::now() + DRAIN_DEADLINE;
    while sealed < workers && Instant::now() < deadline {
        match up_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(Up::Hand(id, value)) => {
                *per_node.entry(id).or_insert(0) += 1;
                if let Some(violation) = checker.record(id, value, now_ms(start)) {
                    violations.push(violation);
                }
            }
            Ok(Up::Sealed) => sealed += 1,
            Err(_) => {}
        }
    }
    if sealed < workers {
        violations.push(format!("liveness: live drain timed out with {sealed}/{workers} sealed"));
    }

    for tx in ctl_txs.values() {
        let _ = tx.send(Ctl::Stop);
    }
    for handle in handles {
        handle.join().expect("worker thread must not panic");
    }
    // Drain any hand-outs that raced the seal notifications.
    while let Ok(up) = up_rx.try_recv() {
        if let Up::Hand(id, value) = up {
            *per_node.entry(id).or_insert(0) += 1;
            if let Some(violation) = checker.record(id, value, now_ms(start)) {
                violations.push(violation);
            }
        }
    }
    let coordinator = coordinator_handle.join().expect("coordinator thread must not panic");
    if sealed == workers {
        violations.extend(checker.finalize(&coordinator));
    }

    LiveReport {
        handed: checker.handed(),
        unique: checker.unique(),
        per_node,
        violations,
        cursor: coordinator.cursor,
    }
}

/// [`run_live`] with the coordinator replicated across `replicas`
/// threads (see [`crate::replica`]): a router thread fans the virtual
/// coordinator id out to the group, a leader is elected live, and the
/// final audit runs against the leader's committed state.
#[must_use]
pub fn run_live_replicated(workers: u64, demand_per_node: u64, replicas: u64) -> LiveReport {
    let config = ProtocolConfig {
        heartbeat_every: 20,
        retry_after: 40,
        fail_after: 2_000,
        lease_ticks: 200,
        ..ProtocolConfig::default()
    };
    let start = Instant::now();
    let ids: Vec<NodeId> = (1..=workers).collect();
    let mut members = vec![COORDINATOR];
    members.extend(&ids);

    let mut transport = ChannelTransport::new();
    let mut net_rxs: BTreeMap<NodeId, Receiver<Envelope>> = BTreeMap::new();
    let all_ids: Vec<NodeId> = std::iter::once(COORDINATOR)
        .chain(ids.iter().copied())
        .chain((0..replicas).map(replica_id))
        .collect();
    for &id in &all_ids {
        let (tx, rx) = channel();
        transport.register(id, tx);
        net_rxs.insert(id, rx);
    }
    let (up_tx, up_rx) = channel();

    let mut ctl_txs: BTreeMap<NodeId, Sender<Ctl>> = BTreeMap::new();
    let mut handles = Vec::new();
    let router_handle = {
        let transport = transport.clone();
        let net_rx = net_rxs.remove(&COORDINATOR).expect("registered above");
        let (ctl_tx, ctl_rx) = channel();
        ctl_txs.insert(COORDINATOR, ctl_tx);
        std::thread::spawn(move || router_loop(replicas, transport, &net_rx, &ctl_rx))
    };
    let mut replica_handles = Vec::new();
    for r in 0..replicas {
        let replica = Replica::new(r, replicas, &ids, config);
        let transport = transport.clone();
        let net_rx = net_rxs.remove(&replica_id(r)).expect("registered above");
        let (ctl_tx, ctl_rx) = channel();
        ctl_txs.insert(replica_id(r), ctl_tx);
        replica_handles.push(std::thread::spawn(move || {
            replica_loop(replica, start, transport, &net_rx, &ctl_rx)
        }));
    }
    for &id in &ids {
        let node = Node::bootstrap(id, config, members.clone());
        let transport = transport.clone();
        let net_rx = net_rxs.remove(&id).expect("registered above");
        let (ctl_tx, ctl_rx) = channel();
        ctl_txs.insert(id, ctl_tx);
        let up_tx = up_tx.clone();
        handles.push(std::thread::spawn(move || {
            worker_loop(node, start, transport, &net_rx, &ctl_rx, &up_tx);
        }));
    }

    let burst = (demand_per_node / 4).max(1);
    let mut sent: BTreeMap<NodeId, u64> = ids.iter().map(|&id| (id, 0)).collect();
    while sent.values().any(|&s| s < demand_per_node) {
        for &id in &ids {
            let remaining = demand_per_node - sent[&id];
            if remaining > 0 {
                let n = burst.min(remaining);
                let _ = ctl_txs[&id].send(Ctl::Demand(n));
                *sent.get_mut(&id).expect("seeded above") += n;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Unlike the single-coordinator harness, grants cannot flow before
    // the first election; draining immediately would abandon the
    // backlog. Wait for the hand-out stream to serve every demand (or
    // stall past the deadline) before sealing.
    let mut checker = GlobalChecker::new();
    let mut violations = Vec::new();
    let mut per_node: BTreeMap<NodeId, u64> = BTreeMap::new();
    let expected = workers * demand_per_node;
    let mut handed_events = 0u64;
    let serve_deadline = Instant::now() + DRAIN_DEADLINE;
    while handed_events < expected && Instant::now() < serve_deadline {
        match up_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(Up::Hand(id, value)) => {
                handed_events += 1;
                *per_node.entry(id).or_insert(0) += 1;
                if let Some(violation) = checker.record(id, value, now_ms(start)) {
                    violations.push(violation);
                }
            }
            Ok(Up::Sealed) | Err(_) => {}
        }
    }

    for &id in &ids {
        let _ = ctl_txs[&id].send(Ctl::Drain);
    }
    let mut sealed = 0u64;
    let deadline = Instant::now() + DRAIN_DEADLINE;
    while sealed < workers && Instant::now() < deadline {
        match up_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(Up::Hand(id, value)) => {
                *per_node.entry(id).or_insert(0) += 1;
                if let Some(violation) = checker.record(id, value, now_ms(start)) {
                    violations.push(violation);
                }
            }
            Ok(Up::Sealed) => sealed += 1,
            Err(_) => {}
        }
    }
    if sealed < workers {
        violations.push(format!("liveness: live drain timed out with {sealed}/{workers} sealed"));
    }

    for tx in ctl_txs.values() {
        let _ = tx.send(Ctl::Stop);
    }
    for handle in handles {
        handle.join().expect("worker thread must not panic");
    }
    router_handle.join().expect("router thread must not panic");
    while let Ok(up) = up_rx.try_recv() {
        if let Up::Hand(id, value) = up {
            *per_node.entry(id).or_insert(0) += 1;
            if let Some(violation) = checker.record(id, value, now_ms(start)) {
                violations.push(violation);
            }
        }
    }
    // The audit runs against the group's authoritative state: the
    // leader's, falling back to the highest (term, commit) replica.
    let finals: Vec<(bool, u64, u64, CoordinatorDurable)> = replica_handles
        .into_iter()
        .map(|h| h.join().expect("replica thread must not panic"))
        .collect();
    let coordinator = finals
        .iter()
        .max_by_key(|(leader, term, commit, _)| (*leader, *term, *commit))
        .map(|(_, _, _, coord)| coord.clone())
        .expect("at least one replica");
    if sealed == workers {
        violations.extend(checker.finalize(&coordinator));
    }

    LiveReport {
        handed: checker.handed(),
        unique: checker.unique(),
        per_node,
        violations,
        cursor: coordinator.cursor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_threads_hand_out_a_unique_exact_range() {
        let report = run_live(3, 50);
        assert_eq!(report.violations, Vec::<String>::new());
        assert_eq!(report.handed, 150);
        assert_eq!(report.unique, 150);
        assert_eq!(report.per_node.values().sum::<u64>(), 150);
        assert!(report.cursor >= 150, "every hand-out was allocated");
    }

    #[test]
    fn a_replicated_coordinator_serves_live_threads_identically() {
        let report = run_live_replicated(3, 40, 3);
        assert_eq!(report.violations, Vec::<String>::new());
        assert_eq!(report.handed, 120);
        assert_eq!(report.unique, 120);
        assert!(report.cursor >= 120, "every hand-out was allocated");
    }
}
