//! The deterministic fault-injecting cluster simulation.
//!
//! [`run_sim`] is a pure function of `(config, seed)`: the demand
//! schedule, churn plan (crashes, restarts, joins, leaves) and every
//! per-hop fault decision (drop / duplicate / delay / reorder) derive
//! from forked [`SimRng`] streams, and events resolve through a
//! [`counting_sim::des::EventQueue`] keyed by `(tick, insertion seq)` —
//! so two runs with the same seed produce byte-identical traces, and any
//! counterexample replays exactly. All cross-node state lives in
//! `BTreeMap`s ordered by node id; nothing iterates a hash map.
//!
//! A run has two phases: the **torture window** (`0..horizon` ticks)
//! where demand flows and the fault plan applies to every hop, and the
//! **drain** where faults stop, crashed nodes finish restarting, every
//! node seals its stream, and the [`GlobalChecker`] audits the exact
//! range. Faults apply per hop, so tree-relayed messages cross the
//! faulty network once per edge.
//!
//! [`Mutation`] carries the calibration bugs that prove the checker has
//! teeth (the discipline `counting-sim`'s model checker established):
//! each one is a plausible implementation mistake whose injection must
//! produce a caught violation.

use serde::{Deserialize, Serialize};

use counting_sim::des::{EventQueue, FaultPlan, PartitionWindow, SimRng};

use crate::check::GlobalChecker;
use crate::coordinator::{Coordinator, CoordinatorDurable};
use crate::message::{Envelope, NodeId, Outgoing, COORDINATOR};
use crate::node::{Node, NodeDurable, ProtocolConfig};
use crate::replica::{replica_id, Replica, ReplicaDurable, REPLICA_BASE};

/// A deliberately-injected protocol bug, used to calibrate the checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mutation {
    /// A restarted node skips replaying its durable watermark into the
    /// local registry, so its stream restarts at zero and re-hands old
    /// values — caught online as a uniqueness violation.
    SkipRecovery,
    /// The coordinator forgets grant deduplication: a duplicated or
    /// retried request allocates a second block and the first grant
    /// record leaks — caught at quiescence as an exact-range gap (or a
    /// grant/hand-out mismatch when the first block was partly
    /// consumed).
    GrantNoDedup,
    /// Replicated mode: a leader whose lease lapsed keeps serving lease
    /// requests from its local state, off the log — a partition makes
    /// two leaders allocate the same blocks, caught online as a
    /// uniqueness violation.
    SplitBrainDoubleGrant,
    /// Replicated mode: the leader treats its own ack as a commit
    /// quorum; a partitioned minority leader's grants are truncated
    /// away on heal — caught at quiescence as exact-range violations.
    CommitBeforeQuorum,
}

impl Mutation {
    /// Every calibration mutation, in flag order.
    pub const ALL: [Mutation; 4] = [
        Mutation::SkipRecovery,
        Mutation::GrantNoDedup,
        Mutation::SplitBrainDoubleGrant,
        Mutation::CommitBeforeQuorum,
    ];

    /// The stable flag string naming this mutation on the `exp_cluster`
    /// command line.
    #[must_use]
    pub fn flag(self) -> &'static str {
        match self {
            Mutation::SkipRecovery => "skip-recovery",
            Mutation::GrantNoDedup => "grant-no-dedup",
            Mutation::SplitBrainDoubleGrant => "split-brain-double-grant",
            Mutation::CommitBeforeQuorum => "commit-before-quorum",
        }
    }

    /// Parses [`Self::flag`].
    #[must_use]
    pub fn parse(flag: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|m| m.flag() == flag)
    }
}

/// One simulation cell: cluster size, load, fault plan, churn plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSimConfig {
    /// Founding worker count (ids `1..=workers`).
    pub workers: u64,
    /// Demand events per worker over the torture window.
    pub demand_per_node: u64,
    /// Torture-window length in virtual ticks.
    pub horizon: u64,
    /// The per-hop fault plan during the torture window.
    pub fault: FaultPlan,
    /// Crash events scheduled (each with a deterministic restart).
    pub crashes: u64,
    /// Workers joining mid-run (ids `workers+1..`).
    pub joins: u64,
    /// Graceful leaves scheduled mid-run.
    pub leaves: u64,
    /// Coordinator replicas: `<= 1` runs the single durable
    /// coordinator, `>= 2` the replicated quorum log
    /// ([`crate::replica`]; 3 or 5 are the realistic sizes).
    pub replicas: u64,
    /// Replica crash events scheduled (each with a deterministic
    /// restart); replicated mode only.
    pub replica_crashes: u64,
    /// Partition windows scheduled, each isolating one replica from the
    /// rest of the group (workers keep reaching both sides — the
    /// split-brain shape); replicated mode only.
    pub partitions: u64,
    /// Protocol timing/sizing.
    pub protocol: ProtocolConfig,
    /// The injected calibration bug, if any.
    pub mutation: Option<Mutation>,
    /// Hard event cap — exceeding it is reported as a liveness
    /// violation instead of hanging.
    pub max_events: u64,
    /// Record the full event trace (byte-identical per seed).
    pub record_trace: bool,
}

impl Default for ClusterSimConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            demand_per_node: 200,
            horizon: 8_000,
            fault: FaultPlan { drop_per_mille: 50, dup_per_mille: 30, min_delay: 1, max_delay: 20 },
            crashes: 2,
            joins: 1,
            leaves: 1,
            replicas: 1,
            replica_crashes: 0,
            partitions: 0,
            protocol: ProtocolConfig::default(),
            mutation: None,
            max_events: 2_000_000,
            record_trace: false,
        }
    }
}

/// One recorded simulation event (flat named fields — the shape the
/// vendored serde derive supports).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual tick.
    pub at: u64,
    /// Deterministic sequence number within the run.
    pub seq: u64,
    /// Event kind (`send`, `drop`, `dup`, `deliver`, `lost`, `handout`,
    /// `crash`, `restart`, `join`, `leave`, `drain`, `violation`,
    /// `sever`, `replica-crash`, `replica-restart`).
    pub kind: String,
    /// The node the event concerns.
    pub node: u64,
    /// Kind-specific detail (message rendering, value, violation text).
    pub info: String,
}

/// A replayable event trace: the seed plus everything that happened.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterTrace {
    /// The seed the run derives from.
    pub seed: u64,
    /// All recorded events in deterministic order.
    pub events: Vec<TraceEvent>,
}

/// Aggregate run statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Hops attempted (per-edge sends, relays included).
    pub sent: u64,
    /// Hops delivered.
    pub delivered: u64,
    /// Hops dropped by the fault plan.
    pub dropped: u64,
    /// Hops duplicated by the fault plan.
    pub duplicated: u64,
    /// Hops addressed to a crashed node (lost on arrival).
    pub lost: u64,
    /// Values handed out (repeats included).
    pub handed: u64,
    /// Crash events that fired.
    pub crashes: u64,
    /// Restart events that fired.
    pub restarts: u64,
    /// Join events that fired.
    pub joins: u64,
    /// Leave events that fired.
    pub leaves: u64,
    /// Demand events skipped because the target was down or sealed.
    pub demand_skipped: u64,
    /// Total events processed.
    pub events: u64,
    /// Hops cut by an active partition window.
    pub severed: u64,
    /// Replica crash events that fired (replicated mode).
    pub replica_crashes: u64,
    /// Replica restart events that fired (replicated mode).
    pub replica_restarts: u64,
}

/// The outcome of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// The seed the run derives from.
    pub seed: u64,
    /// Values handed out (repeats included).
    pub handed: u64,
    /// Distinct values handed out.
    pub unique: u64,
    /// Every violation caught (uniqueness, exact-range, liveness).
    pub violations: Vec<String>,
    /// Whether every worker sealed and was acknowledged before the
    /// event cap.
    pub converged: bool,
    /// The coordinator's final cursor (values ever allocated).
    pub cursor: u64,
    /// Values sitting in the final free-list.
    pub free_total: u64,
    /// The tick the run ended at.
    pub final_tick: u64,
    /// Aggregate statistics.
    pub stats: SimStats,
    /// The recorded trace, when [`ClusterSimConfig::record_trace`].
    pub trace: Option<ClusterTrace>,
}

/// A scheduled simulation event.
enum Ev {
    Tick,
    Deliver { hop: NodeId, env: Envelope },
    Demand { node: NodeId },
    Crash { node: NodeId },
    Restart { node: NodeId },
    Join { node: NodeId },
    Leave { node: NodeId },
    ReplicaCrash { index: u64 },
    ReplicaRestart { index: u64 },
    Drain,
}

/// A worker slot: up (running state machine) or down (durable state
/// waiting for its restart).
enum Slot {
    Up(Box<Node>),
    Down(NodeDurable),
}

/// A replica slot: up, or down holding the state a crash preserves.
enum ReplicaSlot {
    Up(Box<Replica>),
    Down(ReplicaDurable),
}

/// The coordination side of the cluster: one durable coordinator, or a
/// replicated group behind the virtual coordinator id.
enum Control {
    Single(Box<Coordinator>),
    Replicated {
        replicas: std::collections::BTreeMap<u64, ReplicaSlot>,
        /// Round-robin cursor fanning coordinator-addressed hops over
        /// the group.
        rotation: u64,
    },
}

/// Global tick granularity: every state machine sees time advance in
/// steps of this many virtual ticks.
const TICK_EVERY: u64 = 5;

struct Harness {
    config: ClusterSimConfig,
    control: Control,
    slots: std::collections::BTreeMap<NodeId, Slot>,
    left: std::collections::BTreeSet<NodeId>,
    queue: EventQueue<Ev>,
    fault_rng: SimRng,
    active_fault: FaultPlan,
    partitions: Vec<PartitionWindow>,
    checker: GlobalChecker,
    violations: Vec<String>,
    stats: SimStats,
    trace: Vec<TraceEvent>,
    trace_seq: u64,
    draining: bool,
}

impl Harness {
    fn record(&mut self, at: u64, kind: &str, node: u64, info: String) {
        if !self.config.record_trace {
            return;
        }
        let seq = self.trace_seq;
        self.trace_seq += 1;
        self.trace.push(TraceEvent { at, seq, kind: kind.to_owned(), node, info });
    }

    /// Routes one outgoing hop through the partition schedule and the
    /// fault plan. `from` is the physical sender (a worker id, the
    /// coordinator, or a replica id) — partitions cut physical links.
    fn transmit(&mut self, now: u64, from: NodeId, out: Outgoing) {
        let mut hop = out.hop;
        if hop == COORDINATOR {
            if let Control::Replicated { replicas, rotation } = &mut self.control {
                // The virtual coordinator id fans out round-robin over
                // the group; a follower forwards to its leader hint.
                hop = replica_id(*rotation % replicas.len() as u64);
                *rotation += 1;
            }
        }
        self.stats.sent += 1;
        self.record(now, "send", out.env.src, format!("hop n{}: {}", hop, out.env.msg));
        if self.partitions.iter().any(|w| w.severs(now, from, hop)) {
            self.stats.severed += 1;
            self.record(now, "sever", out.env.src, format!("hop n{}: {}", hop, out.env.msg));
            return;
        }
        let delays = self.active_fault.decide(&mut self.fault_rng);
        match delays.len() {
            0 => {
                self.stats.dropped += 1;
                self.record(now, "drop", out.env.src, format!("hop n{}: {}", hop, out.env.msg));
                return;
            }
            2 => {
                self.stats.duplicated += 1;
                self.record(now, "dup", out.env.src, format!("hop n{}: {}", hop, out.env.msg));
            }
            _ => {}
        }
        for delay in delays {
            self.queue.push(now + delay.max(1), Ev::Deliver { hop, env: out.env.clone() });
        }
    }

    /// Flushes a worker's outbox and hand-outs after it ran.
    fn flush_node(&mut self, now: u64, id: NodeId) {
        let Some(Slot::Up(node)) = self.slots.get_mut(&id) else {
            return;
        };
        let outgoing = node.take_outbox();
        let handouts = node.take_handouts();
        for value in handouts {
            self.stats.handed += 1;
            self.record(now, "handout", id, format!("{value}"));
            if let Some(violation) = self.checker.record(id, value, now) {
                self.record(now, "violation", id, violation.clone());
                self.violations.push(violation);
            }
        }
        for out in outgoing {
            self.transmit(now, id, out);
        }
    }

    fn flush_coordinator(&mut self, now: u64) {
        let Control::Single(coordinator) = &mut self.control else {
            return;
        };
        for out in coordinator.take_outbox() {
            self.transmit(now, COORDINATOR, out);
        }
    }

    fn flush_replica(&mut self, now: u64, index: u64) {
        let Control::Replicated { replicas, .. } = &mut self.control else {
            return;
        };
        let Some(ReplicaSlot::Up(replica)) = replicas.get_mut(&index) else {
            return;
        };
        let outgoing = replica.take_outbox();
        for out in outgoing {
            self.transmit(now, replica_id(index), out);
        }
    }

    /// The state the quiescence audit runs against: the single
    /// coordinator's, or the best replica's — the current leader, else
    /// the highest `(term, commit)` survivor.
    fn authoritative_coord(&self) -> Option<&CoordinatorDurable> {
        match &self.control {
            Control::Single(coordinator) => Some(coordinator.durable()),
            Control::Replicated { replicas, .. } => replicas
                .values()
                .filter_map(|slot| match slot {
                    ReplicaSlot::Up(r) => Some(r),
                    ReplicaSlot::Down(_) => None,
                })
                .max_by_key(|r| (r.is_leader(), r.term(), r.commit()))
                .map(|r| r.coord()),
        }
    }

    /// Every worker (founders, joiners, leavers) is up and
    /// sealed-acknowledged.
    fn done(&self) -> bool {
        self.draining
            && self.slots.values().all(|slot| match slot {
                Slot::Up(node) => node.is_sealed_acked(),
                Slot::Down(_) => false,
            })
    }
}

/// Runs one simulated cluster lifetime. See the [module docs](self).
#[must_use]
pub fn run_sim(config: &ClusterSimConfig, seed: u64) -> SimReport {
    let config = *config;
    let root = SimRng::new(seed);
    let mut plan_rng = root.fork(1);
    let fault_rng = root.fork(2);

    let founders: Vec<NodeId> = (1..=config.workers).collect();
    let mut member_bootstrap = vec![COORDINATOR];
    member_bootstrap.extend(&founders);

    let control = if config.replicas > 1 {
        let mut replicas = std::collections::BTreeMap::new();
        for index in 0..config.replicas {
            let mut replica = Replica::new(index, config.replicas, &founders, config.protocol);
            match config.mutation {
                Some(Mutation::SplitBrainDoubleGrant) => replica.enable_split_brain(),
                Some(Mutation::CommitBeforeQuorum) => replica.enable_commit_before_quorum(),
                _ => {}
            }
            replicas.insert(index, ReplicaSlot::Up(Box::new(replica)));
        }
        Control::Replicated { replicas, rotation: 0 }
    } else {
        let mut coordinator = Coordinator::new(config.protocol, &founders);
        if config.mutation == Some(Mutation::GrantNoDedup) {
            coordinator.enable_grant_no_dedup();
        }
        Control::Single(Box::new(coordinator))
    };

    let mut slots = std::collections::BTreeMap::new();
    for &id in &founders {
        let node = Node::bootstrap(id, config.protocol, member_bootstrap.clone());
        slots.insert(id, Slot::Up(Box::new(node)));
    }

    let mut queue = EventQueue::new();
    queue.push(0, Ev::Tick);
    queue.push(config.horizon, Ev::Drain);

    // Demand plan: founders draw over the whole window, joiners from
    // their join time on.
    let horizon = config.horizon.max(1);
    for &id in &founders {
        for _ in 0..config.demand_per_node {
            queue.push(plan_rng.below(horizon), Ev::Demand { node: id });
        }
    }
    for j in 0..config.joins {
        let id = config.workers + 1 + j;
        let join_at = plan_rng.range(horizon / 5, horizon / 2);
        queue.push(join_at, Ev::Join { node: id });
        for _ in 0..config.demand_per_node {
            queue.push(plan_rng.range(join_at, horizon), Ev::Demand { node: id });
        }
    }
    // Churn plan: each crash gets its deterministic restart; leaves hit
    // founders (fire-time checks skip targets that are down or gone).
    for _ in 0..config.crashes {
        if config.workers == 0 {
            break;
        }
        let node = 1 + plan_rng.below(config.workers);
        let at = plan_rng.range(horizon / 10, (horizon * 4) / 5);
        let down_for = plan_rng.range(config.protocol.fail_after, config.protocol.fail_after * 3);
        queue.push(at, Ev::Crash { node });
        queue.push(at + down_for, Ev::Restart { node });
    }
    for _ in 0..config.leaves {
        if config.workers == 0 {
            break;
        }
        let node = 1 + plan_rng.below(config.workers);
        let at = plan_rng.range(horizon / 4, (horizon * 3) / 4);
        queue.push(at, Ev::Leave { node });
    }
    // Replica fault plan. These draws come *after* every legacy draw
    // and are guarded by the counts, so single-coordinator configs see
    // byte-identical rng streams to earlier releases.
    let lease = config.protocol.lease_ticks.max(1);
    for _ in 0..config.replica_crashes {
        if config.replicas <= 1 {
            break;
        }
        let index = plan_rng.below(config.replicas);
        let at = plan_rng.range(horizon / 10, (horizon * 4) / 5);
        let down_for = plan_rng.range(lease * 2, lease * 6);
        queue.push(at, Ev::ReplicaCrash { index });
        queue.push(at + down_for, Ev::ReplicaRestart { index });
    }
    let mut partitions = Vec::new();
    for window in 0..config.partitions {
        if config.replicas <= 1 {
            break;
        }
        // Isolate one replica from the rest of the group. Workers sit
        // on neither side, so they still reach *both* halves — the
        // split-brain shape a stale leader needs to double-grant. The
        // first window always cuts replica 0 — the deterministic
        // initial leader, so the most adversarial target; later windows
        // pick at random (the draw still happens so the rng stream does
        // not depend on the window index).
        let drawn = plan_rng.below(config.replicas);
        let isolated = if window == 0 { 0 } else { drawn };
        let start = plan_rng.range(horizon / 10, (horizon * 3) / 5);
        let duration = plan_rng.range(lease * 3, lease * 8);
        partitions.push(PartitionWindow {
            start,
            end: (start + duration).min(horizon),
            side_a: vec![replica_id(isolated)],
            side_b: (0..config.replicas).filter(|&i| i != isolated).map(replica_id).collect(),
        });
    }

    let mut harness = Harness {
        config,
        control,
        slots,
        left: std::collections::BTreeSet::new(),
        queue,
        fault_rng,
        active_fault: config.fault,
        partitions,
        checker: GlobalChecker::new(),
        violations: Vec::new(),
        stats: SimStats::default(),
        trace: Vec::new(),
        trace_seq: 0,
        draining: false,
    };
    harness.flush_coordinator(0);
    for index in 0..config.replicas {
        harness.flush_replica(0, index);
    }

    let mut capped = false;
    while let Some((now, _, ev)) = harness.queue.pop() {
        harness.stats.events += 1;
        if harness.stats.events > config.max_events {
            capped = true;
            break;
        }
        match ev {
            Ev::Tick => {
                if let Control::Single(coordinator) = &mut harness.control {
                    coordinator.on_tick(now);
                }
                harness.flush_coordinator(now);
                let indices: Vec<u64> =
                    if let Control::Replicated { replicas, .. } = &harness.control {
                        replicas.keys().copied().collect()
                    } else {
                        Vec::new()
                    };
                for index in indices {
                    if let Control::Replicated { replicas, .. } = &mut harness.control {
                        if let Some(ReplicaSlot::Up(replica)) = replicas.get_mut(&index) {
                            replica.on_tick(now);
                        }
                    }
                    harness.flush_replica(now, index);
                }
                let ids: Vec<NodeId> = harness.slots.keys().copied().collect();
                for id in ids {
                    if let Some(Slot::Up(node)) = harness.slots.get_mut(&id) {
                        node.on_tick(now);
                    }
                    harness.flush_node(now, id);
                }
                if !harness.done() {
                    harness.queue.push(now + TICK_EVERY, Ev::Tick);
                }
            }
            Ev::Deliver { hop, env } => {
                if hop >= REPLICA_BASE {
                    let index = hop - REPLICA_BASE;
                    let up = matches!(
                        &harness.control,
                        Control::Replicated { replicas, .. }
                            if matches!(replicas.get(&index), Some(ReplicaSlot::Up(_)))
                    );
                    if up {
                        harness.stats.delivered += 1;
                        harness.record(now, "deliver", hop, format!("{}", env.msg));
                        if let Control::Replicated { replicas, .. } = &mut harness.control {
                            if let Some(ReplicaSlot::Up(replica)) = replicas.get_mut(&index) {
                                replica.on_message(now, env);
                            }
                        }
                        harness.flush_replica(now, index);
                    } else {
                        harness.stats.lost += 1;
                        harness.record(now, "lost", hop, format!("{}", env.msg));
                    }
                } else if hop == COORDINATOR {
                    // Only reachable in single-coordinator mode: the
                    // replicated transmit path resolves id 0 to a
                    // physical replica before scheduling delivery.
                    harness.stats.delivered += 1;
                    harness.record(now, "deliver", hop, format!("{}", env.msg));
                    if let Control::Single(coordinator) = &mut harness.control {
                        coordinator.on_message(now, env);
                    }
                    harness.flush_coordinator(now);
                } else if matches!(harness.slots.get(&hop), Some(Slot::Up(_))) {
                    harness.stats.delivered += 1;
                    harness.record(now, "deliver", hop, format!("{}", env.msg));
                    if let Some(Slot::Up(node)) = harness.slots.get_mut(&hop) {
                        node.on_message(now, env);
                    }
                    harness.flush_node(now, hop);
                } else {
                    harness.stats.lost += 1;
                    harness.record(now, "lost", hop, format!("{}", env.msg));
                }
            }
            Ev::Demand { node } => {
                let servable = matches!(harness.slots.get(&node), Some(Slot::Up(_)))
                    && !harness.left.contains(&node)
                    && !harness.draining;
                if servable {
                    if let Some(Slot::Up(n)) = harness.slots.get_mut(&node) {
                        n.demand(now, 1);
                    }
                    harness.flush_node(now, node);
                } else {
                    harness.stats.demand_skipped += 1;
                }
            }
            Ev::Crash { node } => {
                let crashed = match harness.slots.get(&node) {
                    Some(Slot::Up(n)) if !harness.left.contains(&node) => Some(n.durable().clone()),
                    _ => None,
                };
                if let Some(durable) = crashed {
                    harness.slots.insert(node, Slot::Down(durable));
                    harness.stats.crashes += 1;
                    harness.record(now, "crash", node, String::new());
                }
            }
            Ev::Restart { node } => {
                let durable = match harness.slots.get(&node) {
                    Some(Slot::Down(d)) => Some(d.clone()),
                    _ => None,
                };
                if let Some(durable) = durable {
                    let recover = config.mutation != Some(Mutation::SkipRecovery);
                    let mut revived = Node::restart(durable, config.protocol, recover);
                    if harness.draining {
                        revived.begin_drain(now);
                    }
                    harness.slots.insert(node, Slot::Up(Box::new(revived)));
                    harness.stats.restarts += 1;
                    harness.record(now, "restart", node, String::new());
                    harness.flush_node(now, node);
                }
            }
            Ev::Join { node } => {
                if let std::collections::btree_map::Entry::Vacant(slot) = harness.slots.entry(node)
                {
                    slot.insert(Slot::Up(Box::new(Node::fresh(node, config.protocol))));
                    harness.stats.joins += 1;
                    harness.record(now, "join", node, String::new());
                }
            }
            Ev::Leave { node } => {
                let eligible = match harness.slots.get(&node) {
                    Some(Slot::Up(n)) => {
                        !harness.left.contains(&node)
                            && n.is_joined()
                            && !harness.draining
                            && !n.durable().sealed
                    }
                    _ => false,
                };
                if eligible {
                    if let Some(Slot::Up(n)) = harness.slots.get_mut(&node) {
                        n.begin_leave(now);
                    }
                    harness.left.insert(node);
                    harness.stats.leaves += 1;
                    harness.record(now, "leave", node, String::new());
                    harness.flush_node(now, node);
                }
            }
            Ev::ReplicaCrash { index } => {
                let crashed = if let Control::Replicated { replicas, .. } = &mut harness.control {
                    match replicas.get(&index) {
                        Some(ReplicaSlot::Up(replica)) => {
                            let durable = replica.durable().clone();
                            replicas.insert(index, ReplicaSlot::Down(durable));
                            true
                        }
                        _ => false,
                    }
                } else {
                    false
                };
                if crashed {
                    harness.stats.replica_crashes += 1;
                    harness.record(now, "replica-crash", replica_id(index), String::new());
                }
            }
            Ev::ReplicaRestart { index } => {
                let restarted = if let Control::Replicated { replicas, .. } = &mut harness.control {
                    match replicas.get(&index) {
                        Some(ReplicaSlot::Down(durable)) => {
                            let mut replica = Replica::restart(
                                index,
                                config.replicas,
                                &founders,
                                config.protocol,
                                durable.clone(),
                                now,
                            );
                            match config.mutation {
                                Some(Mutation::SplitBrainDoubleGrant) => {
                                    replica.enable_split_brain();
                                }
                                Some(Mutation::CommitBeforeQuorum) => {
                                    replica.enable_commit_before_quorum();
                                }
                                _ => {}
                            }
                            replicas.insert(index, ReplicaSlot::Up(Box::new(replica)));
                            true
                        }
                        _ => false,
                    }
                } else {
                    false
                };
                if restarted {
                    harness.stats.replica_restarts += 1;
                    harness.record(now, "replica-restart", replica_id(index), String::new());
                    harness.flush_replica(now, index);
                }
            }
            Ev::Drain => {
                harness.draining = true;
                // Faults off: the drain must converge.
                harness.active_fault = FaultPlan::reliable(1);
                harness.record(now, "drain", COORDINATOR, String::new());
                let ids: Vec<NodeId> = harness.slots.keys().copied().collect();
                for id in ids {
                    if let Some(Slot::Up(node)) = harness.slots.get_mut(&id) {
                        node.begin_drain(now);
                    }
                    harness.flush_node(now, id);
                }
            }
        }
        if harness.done() {
            break;
        }
    }

    let converged = harness.done();
    if !converged {
        let stuck: Vec<String> = harness
            .slots
            .iter()
            .filter_map(|(id, slot)| match slot {
                Slot::Up(node) if !node.is_sealed_acked() => Some(format!("n{id} unsealed")),
                Slot::Down(_) => Some(format!("n{id} down")),
                Slot::Up(_) => None,
            })
            .collect();
        let why = if capped { "event cap hit" } else { "event queue ran dry" };
        harness
            .violations
            .push(format!("liveness: {why} before drain converged ({})", stuck.join(", ")));
    } else {
        let mut audit = match harness.authoritative_coord() {
            Some(durable) => harness.checker.finalize(durable),
            None => vec!["audit: no surviving replica holds coordinator state".to_owned()],
        };
        for violation in &audit {
            harness.record(harness.queue.now(), "violation", COORDINATOR, violation.clone());
        }
        harness.violations.append(&mut audit);
    }

    let (cursor, free_total) = match harness.authoritative_coord() {
        Some(durable) => (durable.cursor, durable.free.iter().map(|b| b.len).sum()),
        None => (0, 0),
    };
    SimReport {
        seed,
        handed: harness.checker.handed(),
        unique: harness.checker.unique(),
        converged,
        cursor,
        free_total,
        final_tick: harness.queue.now(),
        violations: harness.violations,
        stats: harness.stats,
        trace: if config.record_trace {
            Some(ClusterTrace { seed, events: harness.trace })
        } else {
            None
        },
    }
}
