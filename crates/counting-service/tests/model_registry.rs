//! Exhaustive interleaving checks for the service layer: tenant
//! eviction/watermark hand-off and the rate limiter's window rollover.
//!
//! Run with:
//!
//! ```text
//! cargo test -p counting-service --features model --test model_registry
//! ```
//!
//! Structure mirrors `counting-runtime/tests/model_arena.rs`: clean
//! explorations of the real protocols, calibration mutations that must
//! be caught, and pinned-trace replays of each mutation's counterexample
//! against the fixed code.

#![cfg(feature = "model")]

use counting_service::model_scenarios::{
    evict_handoff, evict_handoff_mutated, rate_straddle, rate_straddle_mutated,
    rate_torn_base_mutated, ticket_admit_bound, ticket_admit_bound_mutated,
};
use counting_sim::model::{explore, replay, ModelConfig};

#[test]
fn evict_handoff_is_clean_with_two_preemptions() {
    let config = ModelConfig::with_preemptions(2);
    let report = explore(&config, evict_handoff);
    assert!(report.complete, "exploration hit a budget: {report:?}");
    if let Some(cex) = &report.counterexample {
        panic!("the eviction hand-off has a real counterexample:\n{cex}");
    }
    assert!(report.executions > 1, "no interleaving was actually explored");
}

#[test]
fn rate_straddle_is_clean_with_two_preemptions() {
    let config = ModelConfig::with_preemptions(2);
    let report = explore(&config, rate_straddle);
    assert!(report.complete, "exploration hit a budget: {report:?}");
    if let Some(cex) = &report.counterexample {
        panic!("the fixed rate limiter has a real counterexample:\n{cex}");
    }
    assert!(report.executions > 1, "no interleaving was actually explored");
}

#[test]
fn evicting_an_in_use_tenant_is_caught_and_replays() {
    let config = ModelConfig::with_preemptions(2);
    let report = explore(&config, evict_handoff_mutated);
    let cex = report.counterexample.unwrap_or_else(|| {
        panic!(
            "the evict-in-use mutation survived {} executions: the checker has no teeth",
            report.executions
        )
    });

    replay(&config, evict_handoff_mutated, &cex.trace)
        .expect_err("the pinned schedule must still fail on the mutated protocol");

    // The real protocol (sole-ownership check intact) survives the exact
    // schedule that forked the mutated tenant's stream.
    if let Err(cex) = replay(&config, evict_handoff, &cex.trace) {
        panic!("the real eviction protocol failed the mutation's schedule:\n{cex}");
    }
}

#[test]
fn window_straddling_burst_is_caught_and_replays() {
    let config = ModelConfig::with_preemptions(2);
    let report = explore(&config, rate_straddle_mutated);
    let cex = report.counterexample.unwrap_or_else(|| {
        panic!(
            "the rate-straddle mutation survived {} executions: the checker has no teeth",
            report.executions
        )
    });
    assert!(
        cex.message.contains("over the limit"),
        "the counterexample must be an over-admission, got: {}",
        cex.message
    );

    replay(&config, rate_straddle_mutated, &cex.trace)
        .expect_err("the pinned schedule must still fail on the pre-fix admission path");

    // The seqlock'd limiter survives the exact schedule that over-admits
    // on the pre-fix path.
    if let Err(cex) = replay(&config, rate_straddle, &cex.trace) {
        panic!("the fixed rate limiter failed the mutation's schedule:\n{cex}");
    }
}

/// Regression for the torn epoch/base read: with the seqlock recheck
/// skipped (`rate-torn-base` seeded), a judger preempted between its
/// epoch and base loads judges a late value against the *next* window's
/// base and over-admits a closed window. The checker must catch it, and
/// the versioned read must survive the exact same schedule.
#[test]
fn torn_base_read_is_caught_and_replays() {
    let config = ModelConfig::with_preemptions(2);
    let report = explore(&config, rate_torn_base_mutated);
    let cex = report.counterexample.unwrap_or_else(|| {
        panic!(
            "the rate-torn-base mutation survived {} executions: the checker has no teeth",
            report.executions
        )
    });
    assert!(
        cex.message.contains("over the limit"),
        "the counterexample must be an over-admission, got: {}",
        cex.message
    );

    replay(&config, rate_torn_base_mutated, &cex.trace)
        .expect_err("the pinned schedule must still fail with the recheck skipped");

    // The versioned-pair read survives the exact schedule that tears
    // the unversioned one.
    if let Err(cex) = replay(&config, rate_straddle, &cex.trace) {
        panic!("the versioned base read failed the torn-read schedule:\n{cex}");
    }
}

#[test]
fn ticket_admission_bound_is_clean_with_two_preemptions() {
    let config = ModelConfig::with_preemptions(2);
    let report = explore(&config, ticket_admit_bound);
    assert!(report.complete, "exploration hit a budget: {report:?}");
    if let Some(cex) = &report.counterexample {
        panic!("the clamped ticket gate has a real counterexample:\n{cex}");
    }
    assert!(report.executions > 1, "no interleaving was actually explored");
}

/// Regression for the unbounded `TicketGate::admit`: with the clamp
/// removed (`ticket-unbounded` seeded), releasing capacity into a
/// waiting room with one ticket pre-admits tickets that were never
/// dispensed (and the overflow-baiting second release wraps the bound).
#[test]
fn unclamped_admit_is_caught_and_replays() {
    let config = ModelConfig::with_preemptions(2);
    let report = explore(&config, ticket_admit_bound_mutated);
    let cex = report.counterexample.unwrap_or_else(|| {
        panic!(
            "the ticket-unbounded mutation survived {} executions: the checker has no teeth",
            report.executions
        )
    });

    replay(&config, ticket_admit_bound_mutated, &cex.trace)
        .expect_err("the pinned schedule must still fail on the unclamped gate");

    // The clamped gate survives the exact schedule that over-admits on
    // the pre-fix path.
    if let Err(cex) = replay(&config, ticket_admit_bound, &cex.trace) {
        panic!("the clamped ticket gate failed the mutation's schedule:\n{cex}");
    }
}
