//! # counting-service — a multi-tenant counter serving layer
//!
//! Everything below `counting-runtime` constructs and tortures *one*
//! counter at a time; real serving workloads own **many named counters
//! at once** — per-flow accounting, per-queue admission ticketing,
//! per-tenant id allocation — with tenants arriving, churning and
//! disappearing while traffic flows. This crate is that layer:
//!
//! * [`CounterService`] — a sharded, concurrent registry mapping tenant
//!   names to lazily-constructed counters. Lookups of existing tenants
//!   take one shard read lock; creation and eviction serialize only
//!   their shard. Every tenant stream is drawn through contiguous
//!   [`counting_runtime::BlockReserve`] blocks, so each tenant's
//!   hand-out tiles `0..issued` for any batch-size mix — and eviction
//!   records a watermark that re-creation resumes from, so a tenant's
//!   values stay unique across its whole service lifetime.
//! * [`ServiceConfig`] — the per-service construction policy: which
//!   [`Backend`] (counting network, diffracting tree, central,
//!   mutex), the network width, and whether/how to wrap each tenant in
//!   an elimination arena ([`counting_runtime::EliminationCounter`]
//!   with a chosen [`counting_runtime::WaitStrategy`]).
//! * Workload adapters on top of any tenant handle: [`IdGenerator`]
//!   (batched id leases with local refill), [`TicketGate`]
//!   (ticket-lock admission), [`RateLimiter`] (windowed token
//!   counting).
//!
//! ## Quick start
//!
//! ```
//! use counting_runtime::SharedCounter;
//! use counting_service::{Backend, CounterService, ServiceConfig};
//!
//! // One service, many tenants: network-backed, elimination-wrapped.
//! let service = CounterService::new(ServiceConfig {
//!     backend: Backend::Network,
//!     width: 8,
//!     ..ServiceConfig::default()
//! });
//!
//! // Per-flow accounting: each flow's stream is independent and dense.
//! let flow = service.get_or_create("flows/10.0.0.7");
//! assert_eq!(flow.next(0), 0);
//! let mut burst = Vec::new();
//! flow.next_batch(0, 5, &mut burst);
//! assert_eq!(burst, vec![1, 2, 3, 4, 5]);
//!
//! // Admission ticketing on another tenant.
//! let gate = service.ticket_gate("checkout");
//! let ticket = gate.acquire(0);
//! gate.admit(1);
//! assert!(gate.is_admitted(ticket));
//!
//! // Tenant churn: idle tenants retire, their streams resume later.
//! drop(flow);
//! assert!(service.evict_idle() >= 1);
//! let revived = service.get_or_create("flows/10.0.0.7");
//! assert_eq!(revived.next(0), 6, "the stream resumed past the eviction");
//! ```

#![warn(missing_docs)]

pub mod id_gen;
#[cfg(feature = "model")]
pub mod model_scenarios;
pub mod rate;
pub mod registry;
pub mod sync;
pub mod ticket;

pub use id_gen::{IdGenerator, SharedIdGenerator, DEFAULT_ID_SLOTS, DEFAULT_LEASE};
pub use rate::RateLimiter;
pub use registry::{
    Backend, CounterService, EvictOutcome, ServiceConfig, TenantCounter, DEFAULT_SHARDS,
};
pub use ticket::TicketGate;
