//! Batched id allocation: per-thread generators leasing blocks from a
//! shared counter, plus a shareable generator with per-thread lease
//! caches ([`SharedIdGenerator`]) for callers that cannot thread a `&mut`
//! generator through their call graph.

use std::sync::Arc;

use counting_runtime::SharedCounter;
use crossbeam::utils::CachePadded;
use parking_lot::Mutex;

/// Default number of ids leased per refill of an [`IdGenerator`].
pub const DEFAULT_LEASE: usize = 32;

/// A per-thread id allocator drawing **leases** from a shared counter.
///
/// Handing out one id per shared-counter operation puts every allocation
/// on the hot path; a lease amortizes it: one `next_batch` reserves
/// [`Self::lease_size`] ids, and the following `lease_size - 1` calls to
/// [`Self::next_id`] are pure local pops. This is the id-allocation shape
/// of real services (block-leasing sequence generators), and on a
/// network-backed counter each refill costs a *single* traversal.
///
/// A generator is an intentionally `!Sync` per-thread object (its lease
/// buffer needs `&mut`); every thread holds its own, all backed by the
/// same tenant counter, and global uniqueness follows from the counter's
/// contract. Ids inside one lease are handed out in ascending order.
///
/// Leased-but-unconsumed ids belong to this generator: dropping it
/// abandons them (they count as issued by the tenant and will never be
/// handed out again). Callers that need exact accounting drain the lease
/// with [`Self::take_lease`] first.
///
/// ```
/// use std::sync::Arc;
/// use counting_runtime::CentralCounter;
/// use counting_service::IdGenerator;
///
/// let counter = Arc::new(CentralCounter::new());
/// let mut gen = IdGenerator::new(counter, 0, 4);
/// let ids: Vec<u64> = (0..6).map(|_| gen.next_id()).collect();
/// assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
/// assert_eq!(gen.remaining(), 2, "the second lease is half consumed");
/// ```
pub struct IdGenerator {
    counter: Arc<dyn SharedCounter + Send + Sync>,
    thread_id: usize,
    lease_size: usize,
    /// Unconsumed lease ids, stored reversed so `pop` yields ascending
    /// order.
    lease: Vec<u64>,
}

impl std::fmt::Debug for IdGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IdGenerator")
            .field("counter", &self.counter.describe())
            .field("thread_id", &self.thread_id)
            .field("lease_size", &self.lease_size)
            .field("remaining", &self.lease.len())
            .finish()
    }
}

impl IdGenerator {
    /// Creates a generator for `thread_id` leasing `lease_size` ids per
    /// refill from `counter`.
    ///
    /// # Panics
    ///
    /// Panics if `lease_size` is zero.
    #[must_use]
    pub fn new(
        counter: Arc<dyn SharedCounter + Send + Sync>,
        thread_id: usize,
        lease_size: usize,
    ) -> Self {
        assert!(lease_size > 0, "a lease needs at least one id");
        Self { counter, thread_id, lease_size, lease: Vec::with_capacity(lease_size) }
    }

    /// The number of ids each refill leases.
    #[must_use]
    pub fn lease_size(&self) -> usize {
        self.lease_size
    }

    /// Ids still available without touching the shared counter.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.lease.len()
    }

    /// Hands out the next id, refilling the lease from the shared counter
    /// when the local buffer is empty.
    pub fn next_id(&mut self) -> u64 {
        if let Some(id) = self.lease.pop() {
            return id;
        }
        self.counter.next_batch(self.thread_id, self.lease_size, &mut self.lease);
        self.lease.reverse();
        self.lease.pop().expect("a non-empty lease was just fetched")
    }

    /// Takes the unconsumed remainder of the current lease (ascending),
    /// leaving the generator empty. Exact-accounting callers use this at
    /// shutdown: consumed ids plus the drained remainder are precisely
    /// the ids this generator leased.
    pub fn take_lease(&mut self) -> Vec<u64> {
        let mut rest = std::mem::take(&mut self.lease);
        rest.reverse();
        rest
    }
}

/// Default number of per-thread lease slots in a [`SharedIdGenerator`].
pub const DEFAULT_ID_SLOTS: usize = 16;

/// A **shareable** id generator with per-thread lease caches.
///
/// [`IdGenerator`] is deliberately `!Sync`; services that hand one `Arc`
/// to every worker need the same lease amortization without threading a
/// `&mut` generator around. `SharedIdGenerator` keeps one cache-padded,
/// mutex-guarded lease buffer per *slot* and routes each caller to slot
/// `thread_id % slots`: with at least as many slots as threads, the
/// common grant is a pop from a buffer on the caller's own padded cache
/// line — an uncontended lock, no shared-line traffic — and only every
/// `lease_size`-th call touches the shared counter (one `next_batch`
/// refill).
///
/// Global uniqueness follows from the backing counter's contract
/// regardless of the thread-to-slot mapping; a mapping collision costs
/// throughput (two threads sharing a line), never correctness. As with
/// [`IdGenerator`], leased-but-unconsumed ids belong to the generator:
/// drain them with [`Self::drain`] for exact accounting.
///
/// ```
/// use std::sync::Arc;
/// use counting_runtime::CentralCounter;
/// use counting_service::SharedIdGenerator;
///
/// let ids = Arc::new(SharedIdGenerator::new(Arc::new(CentralCounter::new()), 4, 2));
/// let a = ids.next_id(0);
/// let b = ids.next_id(1);
/// assert_ne!(a, b, "ids are globally unique across threads");
/// assert_eq!(ids.remaining(), 6, "each slot holds the rest of its lease");
/// ```
pub struct SharedIdGenerator {
    counter: Arc<dyn SharedCounter + Send + Sync>,
    lease_size: usize,
    /// One lease buffer per slot, each padded to its own cache line so
    /// distinct slots never false-share. Buffers are reversed leases
    /// (`pop` yields ascending order), as in [`IdGenerator`].
    slots: Box<[CachePadded<Mutex<Vec<u64>>>]>,
}

impl std::fmt::Debug for SharedIdGenerator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedIdGenerator")
            .field("counter", &self.counter.describe())
            .field("lease_size", &self.lease_size)
            .field("slots", &self.slots.len())
            .finish()
    }
}

impl SharedIdGenerator {
    /// Creates a generator leasing `lease_size` ids per refill from
    /// `counter`, with `slots` per-thread lease caches.
    ///
    /// # Panics
    ///
    /// Panics if `lease_size` or `slots` is zero.
    #[must_use]
    pub fn new(
        counter: Arc<dyn SharedCounter + Send + Sync>,
        lease_size: usize,
        slots: usize,
    ) -> Self {
        assert!(lease_size > 0, "a lease needs at least one id");
        assert!(slots > 0, "at least one lease slot is required");
        Self {
            counter,
            lease_size,
            slots: (0..slots)
                .map(|_| CachePadded::new(Mutex::new(Vec::with_capacity(lease_size))))
                .collect(),
        }
    }

    /// The number of ids each refill leases.
    #[must_use]
    pub fn lease_size(&self) -> usize {
        self.lease_size
    }

    /// The number of per-thread lease slots.
    #[must_use]
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Hands out the next id for a caller identified by `thread_id`,
    /// refilling the caller's slot from the shared counter when its
    /// cache is empty. Ids from one slot come out ascending within each
    /// lease.
    pub fn next_id(&self, thread_id: usize) -> u64 {
        let mut lease = self.slots[thread_id % self.slots.len()].lock();
        if let Some(id) = lease.pop() {
            return id;
        }
        self.counter.next_batch(thread_id, self.lease_size, &mut lease);
        lease.reverse();
        lease.pop().expect("a non-empty lease was just fetched")
    }

    /// Ids still cached across all slots (a snapshot; exact only when no
    /// caller is mid-grant).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.slots.iter().map(|s| s.lock().len()).sum()
    }

    /// Drains every slot's unconsumed lease remainder (ascending within
    /// each slot), leaving all caches empty. Exact-accounting callers use
    /// this at shutdown, like [`IdGenerator::take_lease`].
    #[must_use]
    pub fn drain(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            let mut lease = std::mem::take(&mut *slot.lock());
            lease.reverse();
            out.extend(lease);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counting_runtime::CentralCounter;

    fn generator(lease: usize) -> (Arc<CentralCounter>, IdGenerator) {
        let counter = Arc::new(CentralCounter::new());
        let handle: Arc<dyn SharedCounter + Send + Sync> = Arc::clone(&counter) as _;
        (counter, IdGenerator::new(handle, 0, lease))
    }

    #[test]
    fn ids_are_ascending_and_refills_are_batched() {
        let (counter, mut gen) = generator(8);
        let ids: Vec<u64> = (0..8).map(|_| gen.next_id()).collect();
        assert_eq!(ids, (0..8).collect::<Vec<u64>>());
        // Exactly one lease was drawn: the shared stream sits at 8.
        assert_eq!(counter.next(0), 8);
    }

    #[test]
    fn take_lease_accounts_for_every_leased_id() {
        let (_, mut gen) = generator(5);
        let consumed: Vec<u64> = (0..3).map(|_| gen.next_id()).collect();
        let rest = gen.take_lease();
        assert_eq!(consumed, vec![0, 1, 2]);
        assert_eq!(rest, vec![3, 4], "the drained remainder is ascending");
        assert_eq!(gen.remaining(), 0);
        // The next id starts a fresh lease.
        assert_eq!(gen.next_id(), 5);
    }

    #[test]
    fn per_thread_generators_never_collide() {
        let counter = Arc::new(CentralCounter::new());
        let all: Vec<u64> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..4)
                .map(|tid| {
                    let handle: Arc<dyn SharedCounter + Send + Sync> = Arc::clone(&counter) as _;
                    scope.spawn(move || {
                        let mut gen = IdGenerator::new(handle, tid, 7);
                        let mut ids: Vec<u64> = (0..50).map(|_| gen.next_id()).collect();
                        ids.extend(gen.take_lease());
                        ids
                    })
                })
                .collect();
            workers.into_iter().flat_map(|w| w.join().expect("no panic")).collect()
        });
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "no id handed out twice");
        // 4 threads × 50 consumed, rounded up to whole leases of 7 each:
        // every leased id is accounted for, so the union tiles exactly.
        assert_eq!(sorted.last().copied(), Some(sorted.len() as u64 - 1));
    }

    #[test]
    #[should_panic(expected = "at least one id")]
    fn zero_lease_rejected() {
        let counter: Arc<dyn SharedCounter + Send + Sync> = Arc::new(CentralCounter::new());
        let _ = IdGenerator::new(counter, 0, 0);
    }

    #[test]
    fn shared_generator_is_unique_and_exact_across_threads() {
        let counter = Arc::new(CentralCounter::new());
        let shared = Arc::new(SharedIdGenerator::new(
            Arc::clone(&counter) as Arc<dyn SharedCounter + Send + Sync>,
            7,
            4,
        ));
        let mut all: Vec<u64> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..4)
                .map(|tid| {
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || (0..50).map(|_| shared.next_id(tid)).collect::<Vec<u64>>())
                })
                .collect();
            workers.into_iter().flat_map(|w| w.join().expect("no panic")).collect()
        });
        all.extend(shared.drain());
        assert_eq!(shared.remaining(), 0);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "no id handed out twice");
        // Consumed plus drained tiles the leased range exactly.
        assert_eq!(sorted.last().copied(), Some(sorted.len() as u64 - 1));
        assert_eq!(counter.next(0), sorted.len() as u64);
    }

    #[test]
    fn shared_generator_refills_per_slot_and_stays_ascending_within_a_slot() {
        let counter = Arc::new(CentralCounter::new());
        let shared = SharedIdGenerator::new(
            Arc::clone(&counter) as Arc<dyn SharedCounter + Send + Sync>,
            4,
            2,
        );
        // Slot 0 consumes a full lease before slot 1 starts: each slot's
        // stream is ascending, and refills draw whole leases.
        let slot0: Vec<u64> = (0..4).map(|_| shared.next_id(0)).collect();
        assert_eq!(slot0, vec![0, 1, 2, 3]);
        let first_of_slot1 = shared.next_id(1);
        assert_eq!(first_of_slot1, 4, "slot 1's lease starts after slot 0's");
        // thread_id 3 maps onto slot 1 (3 % 2) and continues its cache.
        assert_eq!(shared.next_id(3), 5);
        assert_eq!(shared.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one lease slot")]
    fn zero_slots_rejected() {
        let counter: Arc<dyn SharedCounter + Send + Sync> = Arc::new(CentralCounter::new());
        let _ = SharedIdGenerator::new(counter, 4, 0);
    }
}
