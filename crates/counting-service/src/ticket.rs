//! Admission control in the ticket-lock pattern: a shared counter
//! dispenses tickets, an admission cursor says how many may proceed.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use counting_runtime::SharedCounter;

use crate::sync::{mutation_enabled, AtomicU64};

/// A waiting-room gate: arrivals take a ticket from a shared counter and
/// are admitted in ticket order as capacity opens.
///
/// This is the classic ticket-lock shape scaled out — the `waitingroom`
/// admission pattern: the *ticket dispenser* is the contended structure,
/// so backing it with a counting network diffuses the arrival hotspot,
/// while admission itself is a single monotone cursor that only the
/// (rarely contended) capacity-release path advances.
///
/// Because tenant counters hand out block-reserved values, tickets at
/// quiescence are exactly `0..dispensed`: admitting `n` more tickets
/// admits precisely the `n` longest-waiting arrivals.
///
/// # Admission bound
///
/// The gate maintains the invariant `now_serving <= dispensed`: capacity
/// releases admit only tickets that exist. [`Self::admit`] clamps to the
/// dispensed count — releasing more capacity than there are waiters
/// admits everyone currently waiting and *discards* the excess rather
/// than banking it for future arrivals (a waiting room admits people,
/// not promises), and no sequence of releases can overflow the bound
/// (the arithmetic saturates before the clamp). Consequently
/// `is_admitted` is monotone: once a ticket is admitted it stays
/// admitted.
///
/// The gate must be the **sole consumer** of its counter — interleaved
/// draws by other users would leave holes in the ticket sequence and
/// break the density that the clamp (and ticket-order admission) relies
/// on. The service registry guarantees this by giving every gate its own
/// tenant stream.
///
/// The gate is `Sync` — arrivals call [`Self::acquire`] concurrently and
/// poll [`Self::is_admitted`]; the capacity owner calls [`Self::admit`].
///
/// ```
/// use std::sync::Arc;
/// use counting_runtime::CentralCounter;
/// use counting_service::TicketGate;
///
/// let gate = TicketGate::new(Arc::new(CentralCounter::new()));
/// let a = gate.acquire(0);
/// let b = gate.acquire(1);
/// assert!(!gate.is_admitted(a), "nobody is admitted until capacity opens");
/// assert_eq!(gate.admit(1), 1);
/// assert!(gate.is_admitted(a) && !gate.is_admitted(b), "ticket order");
/// assert_eq!(gate.admit(100), 2, "releases clamp to tickets dispensed");
/// ```
pub struct TicketGate {
    counter: Arc<dyn SharedCounter + Send + Sync>,
    /// Tickets below this bound may proceed. Invariant: never exceeds
    /// `dispensed`.
    now_serving: AtomicU64,
    /// Tickets handed out (incremented *before* the counter draw, so the
    /// bound `now_serving <= dispensed` can never admit a ticket that
    /// will not exist — see `acquire`).
    dispensed: AtomicU64,
}

impl std::fmt::Debug for TicketGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TicketGate")
            .field("counter", &self.counter.describe())
            .field("now_serving", &self.now_serving)
            .field("dispensed", &self.dispensed)
            .finish()
    }
}

impl TicketGate {
    /// Creates a gate dispensing tickets from `counter`, admitting none.
    #[must_use]
    pub fn new(counter: Arc<dyn SharedCounter + Send + Sync>) -> Self {
        Self { counter, now_serving: AtomicU64::new(0), dispensed: AtomicU64::new(0) }
    }

    /// Takes the caller's ticket — one shared-counter operation.
    #[must_use]
    pub fn acquire(&self, thread_id: usize) -> u64 {
        // Count the arrival before drawing the ticket: a concurrent
        // admit may then admit a ticket whose draw is still in flight
        // (it exists momentarily later), but the reverse order could
        // *strand* a ticket — admit clamping to a dispensed count that
        // does not yet include an already-drawn ticket would silently
        // drop the capacity meant for it.
        self.dispensed.fetch_add(1, Ordering::AcqRel);
        self.counter.next(thread_id)
    }

    /// Opens capacity for up to `n` more tickets; returns the new
    /// admission bound (every ticket below it may proceed).
    ///
    /// The bound is clamped to the number of tickets dispensed so far:
    /// releasing capacity into an empty waiting room admits nobody and
    /// banks nothing, and repeated over-releases cannot overflow the
    /// bound past tickets that were never handed out.
    pub fn admit(&self, n: u64) -> u64 {
        if mutation_enabled("ticket-unbounded") {
            // The pre-fix behavior, kept reachable only under the model
            // checker: an unclamped fetch_add pre-admits tickets that
            // were never dispensed and wraps on overflow (see
            // `model_scenarios::ticket_admit_bound_mutated`).
            return self.now_serving.fetch_add(n, Ordering::AcqRel).wrapping_add(n);
        }
        let mut serving = self.now_serving.load(Ordering::Acquire);
        loop {
            let dispensed = self.dispensed.load(Ordering::Acquire);
            let target = serving.saturating_add(n).min(dispensed);
            if target <= serving {
                // Nothing (left) to admit; the bound is already at or
                // past every dispensed ticket.
                return serving;
            }
            match self.now_serving.compare_exchange(
                serving,
                target,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return target,
                // Lost a race with another releaser: recompute against
                // the advanced bound.
                Err(actual) => serving = actual,
            }
        }
    }

    /// Whether `ticket` has been admitted.
    #[must_use]
    pub fn is_admitted(&self, ticket: u64) -> bool {
        ticket < self.now_serving.load(Ordering::Acquire)
    }

    /// The current admission bound: tickets `0..now_serving` may proceed.
    #[must_use]
    pub fn now_serving(&self) -> u64 {
        self.now_serving.load(Ordering::Acquire)
    }

    /// Tickets dispensed so far (exact at quiescence; may briefly count
    /// an arrival whose draw is still in flight). The waiting-room depth
    /// is `dispensed - now_serving`.
    #[must_use]
    pub fn dispensed(&self) -> u64 {
        self.dispensed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counting_runtime::CentralCounter;

    fn gate() -> TicketGate {
        TicketGate::new(Arc::new(CentralCounter::new()))
    }

    #[test]
    fn tickets_are_dense_and_admitted_in_order() {
        let gate = gate();
        let tickets: Vec<u64> = (0..5).map(|i| gate.acquire(i)).collect();
        assert_eq!(tickets, (0..5).collect::<Vec<u64>>());
        assert_eq!(gate.now_serving(), 0);
        assert_eq!(gate.admit(2), 2);
        assert!(gate.is_admitted(0) && gate.is_admitted(1));
        assert!(!gate.is_admitted(2));
        assert_eq!(gate.admit(3), 5);
        assert!(tickets.iter().all(|&t| gate.is_admitted(t)));
    }

    #[test]
    fn concurrent_arrivals_get_unique_tickets() {
        let gate = gate();
        let tickets: Vec<u64> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..8)
                .map(|tid| {
                    let gate = &gate;
                    scope.spawn(move || (0..100).map(|_| gate.acquire(tid)).collect::<Vec<u64>>())
                })
                .collect();
            workers.into_iter().flat_map(|w| w.join().expect("no panic")).collect()
        });
        let mut sorted = tickets;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..800).collect::<Vec<u64>>(), "dense unique tickets");
        assert_eq!(gate.dispensed(), 800);
    }

    /// Regression: `admit` used to `fetch_add` with no bound, so capacity
    /// released into an empty (or shallow) waiting room pre-admitted
    /// tickets that were never dispensed.
    #[test]
    fn admit_never_exceeds_dispensed_tickets() {
        let gate = gate();
        assert_eq!(gate.admit(10), 0, "empty waiting room: nothing to admit");
        assert!(!gate.is_admitted(0), "ticket 0 does not exist yet");

        let t0 = gate.acquire(0);
        let t1 = gate.acquire(1);
        assert_eq!(gate.admit(10), 2, "clamped to the two dispensed tickets");
        assert!(gate.is_admitted(t0) && gate.is_admitted(t1));

        // The excess was discarded, not banked: a later arrival waits.
        let t2 = gate.acquire(0);
        assert!(!gate.is_admitted(t2), "over-release must not pre-admit future tickets");
        assert_eq!(gate.admit(1), 3);
        assert!(gate.is_admitted(t2));
    }

    /// Regression: repeated huge releases used to wrap `now_serving`,
    /// silently revoking admissions.
    #[test]
    fn admit_saturates_instead_of_wrapping() {
        let gate = gate();
        let t0 = gate.acquire(0);
        assert_eq!(gate.admit(u64::MAX), 1);
        assert!(gate.is_admitted(t0));
        assert_eq!(gate.admit(u64::MAX), 1, "second over-release is a no-op");
        assert!(gate.is_admitted(t0), "admission is monotone — never revoked by overflow");
        assert!(gate.now_serving() <= gate.dispensed());
    }

    /// The bound holds under concurrent arrivals and over-releases.
    #[test]
    fn concurrent_over_admission_keeps_the_bound() {
        let gate = gate();
        std::thread::scope(|scope| {
            for tid in 0..4 {
                let gate = &gate;
                scope.spawn(move || {
                    for _ in 0..200 {
                        let _ = gate.acquire(tid);
                    }
                });
            }
            let gate = &gate;
            scope.spawn(move || {
                for _ in 0..100 {
                    let bound = gate.admit(u64::MAX);
                    assert!(bound <= gate.dispensed(), "bound above dispensed count");
                }
            });
        });
        assert_eq!(gate.dispensed(), 800);
        assert!(gate.now_serving() <= 800);
        assert_eq!(gate.admit(u64::MAX), 800, "at quiescence everyone can be admitted");
    }
}
