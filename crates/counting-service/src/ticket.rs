//! Admission control in the ticket-lock pattern: a shared counter
//! dispenses tickets, an admission cursor says how many may proceed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use counting_runtime::SharedCounter;

/// A waiting-room gate: arrivals take a ticket from a shared counter and
/// are admitted in ticket order as capacity opens.
///
/// This is the classic ticket-lock shape scaled out — the `waitingroom`
/// admission pattern: the *ticket dispenser* is the contended structure,
/// so backing it with a counting network diffuses the arrival hotspot,
/// while admission itself is a single monotone cursor that only the
/// (rarely contended) capacity-release path advances.
///
/// Because tenant counters hand out block-reserved values, tickets at
/// quiescence are exactly `0..issued`: admitting `n` more tickets admits
/// precisely the `n` longest-waiting arrivals.
///
/// The gate is `Sync` — arrivals call [`Self::acquire`] concurrently and
/// poll [`Self::is_admitted`]; the capacity owner calls [`Self::admit`].
///
/// ```
/// use std::sync::Arc;
/// use counting_runtime::CentralCounter;
/// use counting_service::TicketGate;
///
/// let gate = TicketGate::new(Arc::new(CentralCounter::new()));
/// let a = gate.acquire(0);
/// let b = gate.acquire(1);
/// assert!(!gate.is_admitted(a), "nobody is admitted until capacity opens");
/// assert_eq!(gate.admit(1), 1);
/// assert!(gate.is_admitted(a) && !gate.is_admitted(b), "ticket order");
/// ```
pub struct TicketGate {
    counter: Arc<dyn SharedCounter + Send + Sync>,
    /// Tickets below this bound may proceed.
    now_serving: AtomicU64,
}

impl std::fmt::Debug for TicketGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TicketGate")
            .field("counter", &self.counter.describe())
            .field("now_serving", &self.now_serving)
            .finish()
    }
}

impl TicketGate {
    /// Creates a gate dispensing tickets from `counter`, admitting none.
    #[must_use]
    pub fn new(counter: Arc<dyn SharedCounter + Send + Sync>) -> Self {
        Self { counter, now_serving: AtomicU64::new(0) }
    }

    /// Takes the caller's ticket — one shared-counter operation.
    #[must_use]
    pub fn acquire(&self, thread_id: usize) -> u64 {
        self.counter.next(thread_id)
    }

    /// Opens capacity for `n` more tickets; returns the new admission
    /// bound (every ticket below it may proceed).
    pub fn admit(&self, n: u64) -> u64 {
        self.now_serving.fetch_add(n, Ordering::AcqRel) + n
    }

    /// Whether `ticket` has been admitted.
    #[must_use]
    pub fn is_admitted(&self, ticket: u64) -> bool {
        ticket < self.now_serving.load(Ordering::Acquire)
    }

    /// The current admission bound: tickets `0..now_serving` may proceed.
    /// The waiting-room *depth* is `dispensed - now_serving`, where the
    /// dispensed count is the tenant's watermark — the gate itself keeps
    /// no second copy of it.
    #[must_use]
    pub fn now_serving(&self) -> u64 {
        self.now_serving.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counting_runtime::CentralCounter;

    fn gate() -> TicketGate {
        TicketGate::new(Arc::new(CentralCounter::new()))
    }

    #[test]
    fn tickets_are_dense_and_admitted_in_order() {
        let gate = gate();
        let tickets: Vec<u64> = (0..5).map(|i| gate.acquire(i)).collect();
        assert_eq!(tickets, (0..5).collect::<Vec<u64>>());
        assert_eq!(gate.now_serving(), 0);
        assert_eq!(gate.admit(2), 2);
        assert!(gate.is_admitted(0) && gate.is_admitted(1));
        assert!(!gate.is_admitted(2));
        assert_eq!(gate.admit(3), 5);
        assert!(tickets.iter().all(|&t| gate.is_admitted(t)));
    }

    #[test]
    fn concurrent_arrivals_get_unique_tickets() {
        let gate = gate();
        let tickets: Vec<u64> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..8)
                .map(|tid| {
                    let gate = &gate;
                    scope.spawn(move || (0..100).map(|_| gate.acquire(tid)).collect::<Vec<u64>>())
                })
                .collect();
            workers.into_iter().flat_map(|w| w.join().expect("no panic")).collect()
        });
        let mut sorted = tickets;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..800).collect::<Vec<u64>>(), "dense unique tickets");
    }
}
