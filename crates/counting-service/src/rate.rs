//! Windowed rate limiting by token *counting*: admission decisions read
//! off a shared counter instead of a contended decrement hotspot.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use counting_runtime::SharedCounter;

use crate::sync::{in_model, model_yield, mutation_enabled, AtomicU64};

/// How many times an admission decision re-reads the window epoch while
/// a rollover is mid-install (or keeps losing races to one) before it
/// gives up and sheds the request. A rollover is two plain stores, so in
/// practice one retry suffices; the bound exists so a preempted opener
/// can only ever delay other requests, never block them.
const ROLLOVER_RETRIES: usize = 16;

/// A fixed-window rate limiter backed by a shared counter.
///
/// Classic token buckets serialize every request on one decremented
/// word. This limiter inverts the scheme to fit a counting network:
/// every request *takes a value* from the tenant's counter (the
/// contention-diffused operation), and admission compares that value
/// against the window's base watermark — request number `base + i` of a
/// window is admitted iff `i < limit`. On an exact-range dispenser the
/// first `limit` requests of each window pass and the rest are shed.
///
/// Windows are identified by an explicit caller-supplied index (e.g.
/// `now.as_secs() / window_len`), which keeps the type clock-free and
/// its tests deterministic. Indices must be non-decreasing per caller;
/// the limiter tracks the highest index seen. Indices must stay below
/// `u64::MAX / 2` (they are packed into a versioned epoch word).
///
/// # The admission guarantee
///
/// The window index and its base watermark are published together
/// through a seqlock-style epoch word (`2·w` while window `w`'s base is
/// readable, `2·w + 1` while the window's opener is installing it), so
/// every judged request compares its value against the base of *exactly*
/// the window it names. That closes both classic fixed-window races:
///
/// * **No double admission across a boundary.** A request naming an
///   already-closed window is always shed — it can never be judged
///   against a *newer* window's base and steal that window's budget
///   (which is how a burst straddling the boundary could previously
///   admit up to twice the limit across the two window indices).
/// * **At most `limit` per window index, always.** The window's opener
///   is admitted as request `0` (its own counter value *is* the base),
///   and every other admitted request holds a distinct counter value in
///   `base..base + limit` — `limit` admissions total, with the boundary
///   value `base + limit` shed (no off-by-one at exactly-the-limit).
///
/// Within a settled window the bound is exact: the first `limit` values
/// pass and the rest are shed. While a rollover is being installed,
/// racing requests re-read the epoch a bounded number of times (16)
/// and then fail *closed* — a stalled opener can
/// cause bounded under-admission, never over-admission.
///
/// ```
/// use std::sync::Arc;
/// use counting_runtime::CentralCounter;
/// use counting_service::RateLimiter;
///
/// let limiter = RateLimiter::new(Arc::new(CentralCounter::new()), 2);
/// assert!(limiter.try_acquire(0, 0));
/// assert!(limiter.try_acquire(0, 0));
/// assert!(!limiter.try_acquire(0, 0), "the window's budget is spent");
/// assert!(limiter.try_acquire(0, 1), "a new window refills it");
/// assert!(!limiter.try_acquire(0, 0), "a closed window admits nothing");
/// ```
pub struct RateLimiter {
    counter: Arc<dyn SharedCounter + Send + Sync>,
    limit: u64,
    /// The seqlock epoch: `2·w` while window `w` and its base are
    /// published and stable, `2·w + 1` while `w`'s opener is installing
    /// the base.
    epoch: AtomicU64,
    /// Counter watermark at the current window's start; meaningful only
    /// when the epoch is even.
    base: AtomicU64,
}

impl std::fmt::Debug for RateLimiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RateLimiter")
            .field("counter", &self.counter.describe())
            .field("limit", &self.limit)
            .field("epoch", &self.epoch)
            .field("base", &self.base)
            .finish()
    }
}

impl RateLimiter {
    /// Creates a limiter admitting `limit` requests per window.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero (a limiter that admits nothing needs no
    /// counter).
    #[must_use]
    pub fn new(counter: Arc<dyn SharedCounter + Send + Sync>, limit: u64) -> Self {
        assert!(limit > 0, "the per-window limit must be at least 1");
        Self { counter, limit, epoch: AtomicU64::new(0), base: AtomicU64::new(0) }
    }

    /// The per-window admission budget.
    #[must_use]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Counts this request against `window` and returns whether it is
    /// admitted. One shared-counter operation per call, admitted or not —
    /// shed traffic is counted too (that is what makes the decision
    /// lock-free). See the type docs for the admission guarantee.
    ///
    /// # Panics
    ///
    /// Panics if `window >= u64::MAX / 2` (indices are packed into the
    /// versioned epoch word).
    pub fn try_acquire(&self, thread_id: usize, window: u64) -> bool {
        assert!(window < u64::MAX / 2, "window indices are packed into the epoch word");
        let value = self.counter.next(thread_id);
        if mutation_enabled("rate-straddle") {
            return self.try_acquire_straddling(value, window);
        }
        for _ in 0..ROLLOVER_RETRIES {
            let epoch = self.epoch.load(Ordering::Acquire);
            let current = epoch / 2;
            if window < current {
                // The request's window has already closed. Shedding it
                // unconditionally is what prevents the straddling burst:
                // judged against the *newer* base it could be admitted
                // and consume the new window's budget under the old
                // window's name.
                return false;
            }
            if epoch & 1 == 0 {
                if window == current {
                    if let Some(base) = self.versioned_base(epoch) {
                        return value.wrapping_sub(base) < self.limit;
                    }
                } else if self
                    .epoch
                    .compare_exchange(epoch, 2 * window + 1, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    // This request opens the window: its own value is
                    // the new base, so it is admitted as request 0. The
                    // odd epoch keeps every judger out until the base
                    // store below is published with the even epoch.
                    self.base.store(value, Ordering::Release);
                    self.epoch.store(2 * window, Ordering::Release);
                    return true;
                }
            }
            // Rollover mid-install, a lost open race, or a torn read:
            // back off and re-read.
            if in_model() {
                model_yield();
            } else {
                std::hint::spin_loop();
            }
        }
        // A stalled opener pins the epoch odd; fail closed.
        false
    }

    /// The seqlock read side, and the **only** way the fast path may
    /// read `self.base`: the base is returned solely when the epoch was
    /// observed stable at `epoch` both before and after the read, so the
    /// caller judges against *exactly* the base of the window packed
    /// into `epoch` — never a torn epoch/base pair from a concurrent
    /// window roll. `None` means a roll intervened; the caller must
    /// re-read the epoch and re-decide (the new window may have closed
    /// the request's), not judge.
    fn versioned_base(&self, epoch: u64) -> Option<u64> {
        let base = self.base.load(Ordering::Acquire);
        if mutation_enabled("rate-torn-base") {
            // The unversioned read this helper exists to make
            // impossible, kept reachable only under the model checker:
            // skipping the recheck lets a request judge its (late) value
            // against a *successor* window's base and over-admit a
            // window that already closed (see
            // `model_scenarios::rate_torn_base_mutated`).
            return Some(base);
        }
        // Seqlock recheck: only judge if window and base were stable
        // across both reads — i.e. `base` is this window's base, not a
        // successor's.
        if self.epoch.load(Ordering::Acquire) == epoch {
            Some(base)
        } else {
            None
        }
    }

    /// The pre-fix admission algorithm, kept reachable only as the
    /// `rate-straddle` seeded mutation so the interleaving model suite
    /// can demonstrate the bug it had: a request naming an already-closed
    /// window was judged against the *current* base, so a burst
    /// straddling a boundary could admit up to twice the limit against
    /// one window index (see `model_scenarios::rate_straddle_mutated`).
    fn try_acquire_straddling(&self, value: u64, window: u64) -> bool {
        let mut current = self.epoch.load(Ordering::Acquire) / 2;
        while window > current {
            match self.epoch.compare_exchange_weak(
                2 * current,
                2 * window,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.base.fetch_max(value, Ordering::AcqRel);
                    return true;
                }
                Err(seen) => current = seen / 2,
            }
        }
        value.wrapping_sub(self.base.load(Ordering::Acquire)) < self.limit
    }

    /// The highest window index seen so far.
    #[must_use]
    pub fn current_window(&self) -> u64 {
        self.epoch.load(Ordering::Acquire) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counting_runtime::CentralCounter;

    fn limiter(limit: u64) -> RateLimiter {
        RateLimiter::new(Arc::new(CentralCounter::new()), limit)
    }

    #[test]
    fn admits_exactly_the_limit_per_settled_window() {
        let limiter = limiter(3);
        for window in 0..4u64 {
            let admitted = (0..10).filter(|_| limiter.try_acquire(0, window)).count();
            assert_eq!(admitted, 3, "window {window} admits exactly the limit");
        }
        assert_eq!(limiter.current_window(), 3);
    }

    #[test]
    fn skipped_windows_roll_over_cleanly() {
        let limiter = limiter(2);
        assert!(limiter.try_acquire(0, 0));
        // An idle gap (windows 1..=4 never seen) must not leak budget.
        let admitted = (0..5).filter(|_| limiter.try_acquire(0, 5)).count();
        assert_eq!(admitted, 2);
        assert_eq!(limiter.current_window(), 5);
    }

    #[test]
    fn the_boundary_value_is_shed() {
        // Window 0's base is 0, so values 0..limit are the admissible
        // set and value `limit` exactly must be shed — the off-by-one
        // this suite pins.
        let limiter = limiter(4);
        for i in 0..4 {
            assert!(limiter.try_acquire(0, 0), "value {i} is within the budget");
        }
        assert!(!limiter.try_acquire(0, 0), "value base+limit is outside the budget");
    }

    #[test]
    fn the_opener_spends_one_unit_of_its_windows_budget() {
        let limiter = limiter(1);
        assert!(limiter.try_acquire(0, 0));
        // The opener of window 1 is admitted as its request 0...
        assert!(limiter.try_acquire(0, 1));
        // ...and with limit 1 the window is then already spent.
        assert!(!limiter.try_acquire(0, 1));
    }

    #[test]
    fn closed_windows_shed_instead_of_stealing_new_budget() {
        let limiter = limiter(2);
        assert!(limiter.try_acquire(0, 0));
        assert!(limiter.try_acquire(0, 1), "window 1 opens");
        // This late window-0 request holds a counter value inside window
        // 1's admissible range; judging it against window 1's base (the
        // pre-fix behavior) would *admit* it — traffic counted against a
        // window that already closed. Post-fix it is shed. (Shed traffic
        // still draws a counter value, so it burns one unit of window
        // 1's value-indexed budget — as a shed, never an admission.)
        assert!(!limiter.try_acquire(0, 0), "a closed window admits nothing");
        assert!(
            !limiter.try_acquire(0, 1),
            "window 1's admissible values are spent (opener + the straggler's draw)"
        );
    }

    #[test]
    fn concurrent_requests_in_one_window_respect_the_limit() {
        let limiter = limiter(16);
        let admitted: usize = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..8)
                .map(|tid| {
                    let limiter = &limiter;
                    scope.spawn(move || (0..25).filter(|_| limiter.try_acquire(tid, 0)).count())
                })
                .collect();
            workers.into_iter().map(|w| w.join().expect("no panic")).sum()
        });
        // No rollover races in a single window on an exact dispenser:
        // exactly the first `limit` counter values pass.
        assert_eq!(admitted, 16);
    }

    #[test]
    fn concurrent_rollovers_never_over_admit_any_window() {
        // 8 threads sweep windows 0..8 with traffic far above the limit;
        // whatever interleaving the OS provides, no window index may
        // admit more than `limit`.
        let limit = 4u64;
        let limiter = limiter(limit);
        let mut per_window = vec![0usize; 8];
        let counts: Vec<Vec<usize>> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..8)
                .map(|tid| {
                    let limiter = &limiter;
                    scope.spawn(move || {
                        let mut admitted = vec![0usize; 8];
                        for window in 0..8u64 {
                            for _ in 0..6 {
                                if limiter.try_acquire(tid, window) {
                                    admitted[window as usize] += 1;
                                }
                            }
                        }
                        admitted
                    })
                })
                .collect();
            workers.into_iter().map(|w| w.join().expect("no panic")).collect()
        });
        for counts in counts {
            for (window, n) in counts.into_iter().enumerate() {
                per_window[window] += n;
            }
        }
        for (window, admitted) in per_window.into_iter().enumerate() {
            assert!(
                admitted as u64 <= limit,
                "window {window} admitted {admitted} > limit {limit}"
            );
        }
    }

    /// Regression for the torn-read boundary race: stragglers hammer a
    /// window *while* openers roll it over, maximizing the chance that a
    /// judger's base read straddles an install. Every judgment must go
    /// through the versioned pair, so no window — open or freshly
    /// closed — may ever exceed its budget, and a straggler must never
    /// be admitted under a closed window's name.
    #[test]
    fn boundary_rolls_never_over_admit_under_torn_reads() {
        let limit = 2u64;
        let windows = 64u64;
        let limiter = limiter(limit);
        let per_window: Vec<u64> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..8)
                .map(|tid| {
                    let limiter = &limiter;
                    scope.spawn(move || {
                        let mut admitted = vec![0u64; windows as usize];
                        for window in 0..windows {
                            // Lag half the threads one window behind the
                            // other half so every window sees judgments
                            // racing the *next* window's install.
                            let named = window.saturating_sub(tid as u64 & 1);
                            for _ in 0..4 {
                                if limiter.try_acquire(tid, named) {
                                    admitted[named as usize] += 1;
                                }
                            }
                        }
                        admitted
                    })
                })
                .collect();
            let mut totals = vec![0u64; windows as usize];
            for worker in workers {
                for (w, n) in worker.join().expect("no panic").into_iter().enumerate() {
                    totals[w] += n;
                }
            }
            totals
        });
        for (window, admitted) in per_window.into_iter().enumerate() {
            assert!(admitted <= limit, "window {window} admitted {admitted} > limit {limit}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_limit_rejected() {
        let _ = RateLimiter::new(Arc::new(CentralCounter::new()), 0);
    }
}
