//! Windowed rate limiting by token *counting*: admission decisions read
//! off a shared counter instead of a contended decrement hotspot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use counting_runtime::SharedCounter;

/// A fixed-window rate limiter backed by a shared counter.
///
/// Classic token buckets serialize every request on one decremented
/// word. This limiter inverts the scheme to fit a counting network:
/// every request *takes a value* from the tenant's counter (the
/// contention-diffused operation), and admission compares that value
/// against the window's base watermark — request number `base + i` of a
/// window is admitted iff `i < limit`. On an exact-range dispenser the
/// first `limit` requests of each window pass and the rest are shed.
///
/// Windows are identified by an explicit caller-supplied index (e.g.
/// `now.as_secs() / window_len`), which keeps the type clock-free and
/// its tests deterministic. Indices must be non-decreasing per caller;
/// the limiter tracks the highest index seen.
///
/// Concurrency note: requests racing a window rollover may be judged
/// against the old or the new base — the admitted count per wall-clock
/// window is then approximate (bounded by `limit` per *observed* base),
/// which is the usual fixed-window trade-off. The base watermark is
/// updated monotonically (`fetch_max`), so a delayed opener of an older
/// window can never regress a newer window's base. Within a settled
/// window the bound is exact.
///
/// ```
/// use std::sync::Arc;
/// use counting_runtime::CentralCounter;
/// use counting_service::RateLimiter;
///
/// let limiter = RateLimiter::new(Arc::new(CentralCounter::new()), 2);
/// assert!(limiter.try_acquire(0, 0));
/// assert!(limiter.try_acquire(0, 0));
/// assert!(!limiter.try_acquire(0, 0), "the window's budget is spent");
/// assert!(limiter.try_acquire(0, 1), "a new window refills it");
/// ```
pub struct RateLimiter {
    counter: Arc<dyn SharedCounter + Send + Sync>,
    limit: u64,
    /// Highest window index seen.
    window: AtomicU64,
    /// Counter watermark at the current window's start.
    base: AtomicU64,
}

impl std::fmt::Debug for RateLimiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RateLimiter")
            .field("counter", &self.counter.describe())
            .field("limit", &self.limit)
            .field("window", &self.window)
            .field("base", &self.base)
            .finish()
    }
}

impl RateLimiter {
    /// Creates a limiter admitting `limit` requests per window.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero (a limiter that admits nothing needs no
    /// counter).
    #[must_use]
    pub fn new(counter: Arc<dyn SharedCounter + Send + Sync>, limit: u64) -> Self {
        assert!(limit > 0, "the per-window limit must be at least 1");
        Self { counter, limit, window: AtomicU64::new(0), base: AtomicU64::new(0) }
    }

    /// The per-window admission budget.
    #[must_use]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Counts this request against `window` and returns whether it is
    /// admitted. One shared-counter operation per call, admitted or not —
    /// shed traffic is counted too (that is what makes the decision
    /// lock-free).
    pub fn try_acquire(&self, thread_id: usize, window: u64) -> bool {
        let value = self.counter.next(thread_id);
        let mut current = self.window.load(Ordering::Acquire);
        while window > current {
            match self.window.compare_exchange_weak(
                current,
                window,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    // This request opens the window: its own value is the
                    // new base, so it is admitted (0 < limit). fetch_max,
                    // not store: an opener of an *older* window preempted
                    // between its CAS and this line must not drag a newer
                    // window's base backwards (a plain store could shed a
                    // whole window's traffic against a stale base).
                    self.base.fetch_max(value, Ordering::AcqRel);
                    return true;
                }
                Err(seen) => current = seen,
            }
        }
        value.wrapping_sub(self.base.load(Ordering::Acquire)) < self.limit
    }

    /// The highest window index seen so far.
    #[must_use]
    pub fn current_window(&self) -> u64 {
        self.window.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use counting_runtime::CentralCounter;

    fn limiter(limit: u64) -> RateLimiter {
        RateLimiter::new(Arc::new(CentralCounter::new()), limit)
    }

    #[test]
    fn admits_exactly_the_limit_per_settled_window() {
        let limiter = limiter(3);
        for window in 0..4u64 {
            let admitted = (0..10).filter(|_| limiter.try_acquire(0, window)).count();
            assert_eq!(admitted, 3, "window {window} admits exactly the limit");
        }
        assert_eq!(limiter.current_window(), 3);
    }

    #[test]
    fn skipped_windows_roll_over_cleanly() {
        let limiter = limiter(2);
        assert!(limiter.try_acquire(0, 0));
        // An idle gap (windows 1..=4 never seen) must not leak budget.
        let admitted = (0..5).filter(|_| limiter.try_acquire(0, 5)).count();
        assert_eq!(admitted, 2);
        assert_eq!(limiter.current_window(), 5);
    }

    #[test]
    fn concurrent_requests_in_one_window_respect_the_limit() {
        let limiter = limiter(16);
        let admitted: usize = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..8)
                .map(|tid| {
                    let limiter = &limiter;
                    scope.spawn(move || (0..25).filter(|_| limiter.try_acquire(tid, 0)).count())
                })
                .collect();
            workers.into_iter().map(|w| w.join().expect("no panic")).sum()
        });
        // No rollover races in a single window on an exact dispenser:
        // exactly the first `limit` counter values pass.
        assert_eq!(admitted, 16);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_limit_rejected() {
        let _ = RateLimiter::new(Arc::new(CentralCounter::new()), 0);
    }
}
