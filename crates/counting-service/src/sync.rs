//! The service layer's model-checking seam.
//!
//! Mirrors `counting_runtime::sync` (and re-exports its hooks): with the
//! `model` cargo feature off this is a zero-cost pass-through to `std`
//! atomics and `parking_lot` locks; with it on, the registry's and rate
//! limiter's control atomics become scheduling points of
//! `counting_sim::model`'s exhaustive interleaving explorer.
//!
//! The one piece that is new at this layer is [`RwLock`]: the registry's
//! shards are reader–writer locks, and a thread blocking inside an OS
//! lock is invisible to the model's cooperative scheduler (it would trip
//! the stall watchdog). Under the model, lock acquisition therefore
//! spins on `try_read`/`try_write` with a voluntary yield between
//! attempts, so "waiting for the shard lock" is an explored schedule
//! decision rather than an un-modeled block. Outside the model the
//! wrapper delegates straight to `parking_lot`.

pub use counting_runtime::sync::{in_model, model_point, model_yield, mutation_enabled, AtomicU64};
use parking_lot::{RwLockReadGuard, RwLockWriteGuard};

/// Scheduling-point label for a shard read-lock acquisition.
const POINT_SHARD_READ: u64 = 0x10;
/// Scheduling-point label for a shard write-lock acquisition.
const POINT_SHARD_WRITE: u64 = 0x11;

/// A shard lock that cooperates with the interleaving model (see the
/// module docs). API subset of [`parking_lot::RwLock`]: `new`, `read`,
/// `write`.
#[derive(Debug, Default)]
pub struct RwLock<T>(parking_lot::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub fn new(value: T) -> Self {
        Self(parking_lot::RwLock::new(value))
    }

    /// Acquires shared read access, yielding to the model scheduler
    /// between attempts while an exploration is active.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if in_model() {
            // Lock hand-offs contain no shim-atomic op of their own, so
            // without this explicit point the explorer could never
            // interleave another thread between "decided to lock" and
            // "holds the lock".
            model_point(POINT_SHARD_READ);
            loop {
                if let Some(guard) = self.0.try_read() {
                    return guard;
                }
                model_yield();
            }
        }
        self.0.read()
    }

    /// Acquires exclusive write access, yielding to the model scheduler
    /// between attempts while an exploration is active.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if in_model() {
            model_point(POINT_SHARD_WRITE);
            loop {
                if let Some(guard) = self.0.try_write() {
                    return guard;
                }
                model_yield();
            }
        }
        self.0.write()
    }
}
