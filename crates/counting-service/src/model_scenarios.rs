//! Exhaustive-interleaving scenarios for the service layer: the
//! eviction/watermark hand-off and the rate limiter's window rollover.
//!
//! Same shape as `counting_runtime::model_scenarios` — each function is
//! a fresh [`Scenario`] factory for [`counting_sim::model::explore`],
//! sized so the schedule space is exhaustible within a small preemption
//! budget. The `*_mutated` variants seed a named protocol mutation that
//! the checker **must** catch (the suite fails if they explore clean):
//!
//! * `evict-in-use` — [`crate::CounterService::try_evict`] skips the
//!   sole-ownership check, so an in-flight reservation escapes the
//!   recorded watermark and the recreated tenant forks its stream.
//! * `rate-straddle` — [`crate::RateLimiter`] reverts to its pre-fix
//!   admission path, where a request naming an already-closed window is
//!   judged against the current base and a boundary-straddling burst
//!   over-admits.
//! * `rate-torn-base` — the limiter's fast path reads `base` without the
//!   seqlock recheck, so a judger preempted between its epoch and base
//!   loads judges against a *successor* window's base (a torn pair) and
//!   over-admits a window that already closed.
//! * `ticket-unbounded` — [`crate::TicketGate::admit`] reverts to its
//!   pre-fix unclamped `fetch_add`, pre-admitting tickets that were
//!   never dispensed (and wrapping the bound on overflow).

use std::sync::Arc;

use counting_sim::model::Scenario;

/// A model-thread body reporting `(window, admitted)` per request.
type RateThread = Box<dyn FnOnce() -> Vec<(u64, bool)> + Send + 'static>;

use crate::{Backend, CounterService, RateLimiter, ServiceConfig};
use counting_runtime::{CentralCounter, SharedCounter};

/// A one-shard service over the centralized backend with no elimination
/// arena: every interesting interleaving lives in the registry itself
/// (shard lock, `issued` counter, watermark map), which is exactly what
/// this suite explores. The arena has its own scenarios in
/// `counting_runtime::model_scenarios`.
fn tiny_service() -> Arc<CounterService> {
    Arc::new(CounterService::new(ServiceConfig {
        backend: Backend::Central,
        elimination: false,
        shards: 1,
        ..ServiceConfig::default()
    }))
}

/// The eviction/watermark hand-off: one thread drives tenant traffic and
/// drops its handle; the other races an eviction and a re-creation
/// against it. Whatever the schedule, the tenant's stream must neither
/// fork (duplicate values) nor gap: the two values drawn are exactly
/// `{0, 1}`, and the final watermark is `2`.
#[must_use]
pub fn evict_handoff() -> Scenario<Vec<u64>> {
    let service = tiny_service();
    let writer = {
        let service = Arc::clone(&service);
        Box::new(move || {
            let handle = service.get_or_create("tenant");
            let value = handle.next(0);
            drop(handle);
            vec![value]
        }) as Box<dyn FnOnce() -> Vec<u64> + Send + 'static>
    };
    let evictor = {
        let service = Arc::clone(&service);
        Box::new(move || {
            // Outcome intentionally unchecked: Absent, InUse and Evicted
            // are all legal depending on the schedule — the invariant is
            // on the values, not on which race the evictor won.
            let _ = service.try_evict("tenant");
            let handle = service.get_or_create("tenant");
            let value = handle.next(1);
            drop(handle);
            vec![value]
        }) as Box<dyn FnOnce() -> Vec<u64> + Send + 'static>
    };
    Scenario::new(vec![writer, evictor], move |outs| {
        let mut values: Vec<u64> = outs.iter().flatten().copied().collect();
        values.sort_unstable();
        if values != [0, 1] {
            return Err(format!(
                "the tenant stream forked or gapped: drew {values:?}, expected [0, 1]"
            ));
        }
        // Quiescent hand-off: with every handle dropped, eviction must
        // succeed and record base + issued exactly.
        match service.try_evict("tenant") {
            crate::EvictOutcome::Evicted { watermark: 2 } => {}
            other => return Err(format!("final eviction saw {other:?}, expected watermark 2")),
        }
        if service.watermark("tenant") != 2 {
            return Err("the recorded watermark did not survive the eviction".to_owned());
        }
        Ok(())
    })
}

/// [`evict_handoff`] with the `evict-in-use` mutation seeded: eviction
/// ignores outstanding handles, so a schedule exists where the writer's
/// reservation escapes the watermark and both threads draw value `0`.
/// [`counting_sim::model::explore`] must return a counterexample.
#[must_use]
pub fn evict_handoff_mutated() -> Scenario<Vec<u64>> {
    evict_handoff().with_mutation("evict-in-use")
}

/// Admission budget of the rate limiter across a window boundary. Four
/// requests: two in window 0, one straggler in window 0 racing one
/// opener of window 1 (`limit = 2`). Every thread reports
/// `(window, admitted)` pairs; no window index may admit more than the
/// limit, whichever side of the boundary the schedule lands each
/// request on.
#[must_use]
pub fn rate_straddle() -> Scenario<Vec<(u64, bool)>> {
    let limiter = Arc::new(RateLimiter::new(Arc::new(CentralCounter::new()), 2));
    let requests: [(usize, Vec<u64>); 3] = [(0, vec![0, 0]), (1, vec![1]), (2, vec![0])];
    let threads: Vec<RateThread> = requests
        .into_iter()
        .map(|(thread_id, windows)| {
            let limiter = Arc::clone(&limiter);
            Box::new(move || {
                windows
                    .into_iter()
                    .map(|window| (window, limiter.try_acquire(thread_id, window)))
                    .collect()
            }) as RateThread
        })
        .collect();
    let limit = limiter.limit();
    Scenario::new(threads, move |outs| {
        let mut admitted_per_window = std::collections::HashMap::new();
        let mut admitted_total = 0u64;
        for (window, admitted) in outs.iter().flatten() {
            if *admitted {
                *admitted_per_window.entry(*window).or_insert(0u64) += 1;
                admitted_total += 1;
            }
        }
        for (window, admitted) in admitted_per_window {
            if admitted > limit {
                return Err(format!(
                    "window {window} admitted {admitted} requests, over the limit of {limit}"
                ));
            }
        }
        if admitted_total == 0 {
            return Err("every request was shed — the limiter admitted nothing".to_owned());
        }
        Ok(())
    })
}

/// [`rate_straddle`] with the `rate-straddle` mutation seeded (the
/// pre-fix admission path): a schedule exists where window 0's straggler
/// is judged against window 1's base and window 0 admits three requests
/// against a limit of two. [`counting_sim::model::explore`] must return
/// a counterexample.
#[must_use]
pub fn rate_straddle_mutated() -> Scenario<Vec<(u64, bool)>> {
    rate_straddle().with_mutation("rate-straddle")
}

/// [`rate_straddle`]'s arrival pattern with the `rate-torn-base`
/// mutation seeded: the fast path skips the seqlock recheck, so a
/// schedule exists where window 0's straggler draws a late counter value,
/// is preempted between its (even, matching) epoch load and its base
/// load while window 1's opener installs, and then judges that late
/// value against window 1's base — admitting a third request under
/// window 0's name. [`counting_sim::model::explore`] must return a
/// counterexample; the same exploration over the fixed code
/// ([`rate_straddle`]) must come back clean, which is what makes
/// [`crate::RateLimiter`]'s `versioned_base` helper load-bearing.
#[must_use]
pub fn rate_torn_base_mutated() -> Scenario<Vec<(u64, bool)>> {
    rate_straddle().with_mutation("rate-torn-base")
}

/// The ticket gate's admission bound: one arrival races a capacity
/// owner releasing far more capacity than there are waiters (including
/// an overflow-baiting `u64::MAX`). Whatever the schedule, every bound
/// returned by [`crate::TicketGate::admit`] — and the quiescent
/// `now_serving` — must stay at or below the one ticket dispensed, and
/// the bounds a single releaser observes must be non-decreasing (no
/// overflow wrap ever revokes an admission).
#[must_use]
pub fn ticket_admit_bound() -> Scenario<Vec<u64>> {
    use crate::TicketGate;
    let gate = Arc::new(TicketGate::new(Arc::new(CentralCounter::new())));
    let arrival = {
        let gate = Arc::clone(&gate);
        Box::new(move || vec![gate.acquire(0)]) as Box<dyn FnOnce() -> Vec<u64> + Send + 'static>
    };
    let releaser = {
        let gate = Arc::clone(&gate);
        Box::new(move || vec![gate.admit(3), gate.admit(u64::MAX)])
            as Box<dyn FnOnce() -> Vec<u64> + Send + 'static>
    };
    Scenario::new(vec![arrival, releaser], move |outs| {
        let ticket = outs[0][0];
        if ticket != 0 {
            return Err(format!("the sole arrival drew ticket {ticket}, expected 0"));
        }
        let bounds = &outs[1];
        for &bound in bounds {
            if bound > 1 {
                return Err(format!("admit returned bound {bound} with only 1 ticket dispensed"));
            }
        }
        if bounds[1] < bounds[0] {
            return Err(format!(
                "admission bound went backwards ({} -> {}): the release arithmetic wrapped",
                bounds[0], bounds[1]
            ));
        }
        let (serving, dispensed) = (gate.now_serving(), gate.dispensed());
        if dispensed != 1 {
            return Err(format!("dispensed count drifted: {dispensed}, expected 1"));
        }
        if serving > dispensed {
            return Err(format!(
                "now_serving {serving} exceeds dispensed {dispensed}: undispensed tickets admitted"
            ));
        }
        Ok(())
    })
}

/// [`ticket_admit_bound`] with the `ticket-unbounded` mutation seeded
/// (the pre-fix unclamped `fetch_add`): already the serial schedule
/// returns bound `3` from the first release with a single ticket
/// dispensed, and the second release wraps the bound backwards.
/// [`counting_sim::model::explore`] must return a counterexample.
#[must_use]
pub fn ticket_admit_bound_mutated() -> Scenario<Vec<u64>> {
    ticket_admit_bound().with_mutation("ticket-unbounded")
}
