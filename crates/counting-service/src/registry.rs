//! The sharded multi-tenant counter registry.
//!
//! [`CounterService`] owns *many named counters at once* — the shape of
//! real serving workloads (per-flow accounting, admission ticketing, id
//! allocation), where every tenant needs its own Fetch&Increment value
//! stream and tenants arrive, churn and disappear while traffic flows.
//!
//! # Design
//!
//! * **Sharded map** — tenants are hashed over a fixed array of
//!   [`parking_lot::RwLock`]-guarded shards, so the steady-state path
//!   (an existing tenant looked up by name) takes one read lock on one
//!   shard: readers of different tenants proceed in parallel, and even
//!   readers of the *same* shard share the lock. Writes (tenant creation
//!   and eviction) serialize only their own shard.
//! * **Lazily constructed backends** — a tenant's counter is built on
//!   first touch from the service-wide [`ServiceConfig`]: a
//!   [`Backend`] choice, the network width, an optional
//!   [`EliminationCounter`] wrapping and its [`WaitStrategy`]. The
//!   backend lives behind `Box<dyn BlockReserve + Send + Sync>`, which
//!   is what the `Box`/`Arc` delegation impls in `counting-runtime`
//!   exist for.
//! * **Block-reserved hand-outs** — every tenant stream is drawn through
//!   [`BlockReserve::reserve_block`], never through stride dispensers,
//!   so each tenant's hand-out tiles `0..issued` at every quiescent
//!   point for *any* mix of batch sizes and *any* operation count — the
//!   property the per-tenant invariant checks of `exp_service` and the
//!   torture suite gate on. (Network-backed tenants still pay one
//!   traversal per operation, preserving the paper's
//!   contention-diffusing traffic shape; wrapping with the elimination
//!   arena merges colliding tenants' requests on top.)
//! * **Uniqueness across eviction** — evicting an idle tenant records
//!   its high-water mark; a later [`CounterService::get_or_create`] for
//!   the same name resumes the stream at that offset (see
//!   [`TenantCounter`]), so a tenant's values stay unique across its
//!   whole service lifetime, not just one instance. Eviction refuses
//!   in-use tenants ([`EvictOutcome::InUse`]): the registry only retires
//!   a counter it solely owns, observed under the shard's write lock, so
//!   no operation can be in flight and the recorded watermark is exact.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{fence, Ordering};
use std::sync::Arc;

use balnet::Network;
use counting::counting_network;
use counting_runtime::{
    BlockReserve, CentralCounter, DiffractingCounter, EliminationConfig, EliminationCounter,
    LockCounter, NetworkCounter, SharedCounter, WaitStrategy,
};

// The registry's control atomics and shard locks come through the
// model-checking seam (std/parking_lot pass-throughs unless the `model`
// feature routes them into counting-sim's interleaving explorer).
use crate::sync::{AtomicU64, RwLock};
use crate::{IdGenerator, RateLimiter, TicketGate};

/// Exchanger slots per prism node of a [`Backend::Diffracting`] tenant.
const DIFFRACTING_PRISM_SIZE: usize = 8;
/// Spin budget of a diffracting prism while waiting for a partner.
const DIFFRACTING_PRISM_SPIN: usize = 128;

/// Which counter construction backs every tenant of a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The paper's counting network `C(w, w)` compiled to atomics
    /// ([`NetworkCounter`]); `w` is [`ServiceConfig::width`].
    Network,
    /// A diffracting tree with `width` leaves
    /// ([`DiffractingCounter`]).
    Diffracting,
    /// The centralized `fetch_add` hotspot ([`CentralCounter`]).
    Central,
    /// The mutex-protected baseline ([`LockCounter`]).
    Lock,
}

impl Backend {
    /// Every backend, in the order experiment tables list them.
    pub const ALL: [Backend; 4] =
        [Backend::Network, Backend::Diffracting, Backend::Central, Backend::Lock];

    /// A short stable label used in tables and JSON output (the network
    /// backends include the width, so the label needs the config).
    #[must_use]
    pub fn label(self, width: usize) -> String {
        match self {
            Backend::Network => format!("C({width},{width})"),
            Backend::Diffracting => format!("DiffTree[{width}]"),
            Backend::Central => "central".to_owned(),
            Backend::Lock => "mutex".to_owned(),
        }
    }
}

/// How a [`CounterService`] constructs each tenant's counter.
///
/// The `..Default::default()` idiom keeps call sites readable:
///
/// ```
/// use counting_service::{Backend, ServiceConfig};
/// use counting_runtime::WaitStrategy;
///
/// let config = ServiceConfig {
///     backend: Backend::Network,
///     strategy: WaitStrategy::Park,
///     ..ServiceConfig::default()
/// };
/// assert_eq!(config.width, 16);
/// assert!(config.elimination);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// The counter construction backing every tenant (default
    /// [`Backend::Network`]).
    pub backend: Backend,
    /// Input/output width of the network-shaped backends (default `16`;
    /// must be a power of two `>= 2` for [`Backend::Network`] and
    /// [`Backend::Diffracting`], ignored by the centralized ones).
    pub width: usize,
    /// Whether to wrap each tenant's backend in an
    /// [`EliminationCounter`] arena (default `true`): colliding
    /// same-tenant requests then merge into one combined reservation.
    pub elimination: bool,
    /// The [`WaitStrategy`] of the elimination arena (default
    /// [`WaitStrategy::SpinYield`]; ignored unless `elimination`).
    pub strategy: WaitStrategy,
    /// Number of registry shards (default [`DEFAULT_SHARDS`]; must be
    /// `> 0`). More shards admit more parallel tenant *creations*;
    /// lookups of existing tenants share read locks either way.
    pub shards: usize,
}

/// Default number of registry shards in a [`ServiceConfig`].
pub const DEFAULT_SHARDS: usize = 16;

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            backend: Backend::Network,
            width: 16,
            elimination: true,
            strategy: WaitStrategy::default(),
            shards: DEFAULT_SHARDS,
        }
    }
}

impl ServiceConfig {
    /// A short stable label naming backend, elimination wrapping and
    /// strategy, used as the row key of `exp_service` tables.
    #[must_use]
    pub fn label(&self) -> String {
        let base = self.backend.label(self.width);
        if self.elimination {
            format!("{base}+elim[{}]", self.strategy.label())
        } else {
            base
        }
    }
}

/// One tenant's counter: a [`BlockReserve`] backend behind a value-stream
/// offset.
///
/// The offset (`base`) is the tenant's high-water mark from previous
/// instance lifetimes: a freshly created tenant starts at `0`, a tenant
/// re-created after an eviction resumes where the evicted instance
/// stopped, so the *tenant's* stream stays unique and gap-free across
/// instances even though each backend instance counts from zero.
///
/// All hand-outs go through [`BlockReserve::reserve_block`] on the
/// backend, so the instance's raw values tile `0..issued` at every
/// quiescent point regardless of batch-size mix — which is exactly what
/// makes `base + issued` a resumable watermark.
pub struct TenantCounter {
    tenant: String,
    inner: Box<dyn BlockReserve + Send + Sync>,
    base: u64,
    issued: AtomicU64,
}

impl std::fmt::Debug for TenantCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantCounter")
            .field("tenant", &self.tenant)
            .field("inner", &self.inner.describe())
            .field("base", &self.base)
            .field("issued", &self.issued)
            .finish()
    }
}

impl TenantCounter {
    /// Builds a tenant counter resuming at `base`. Exposed for direct
    /// composition; service users go through
    /// [`CounterService::get_or_create`].
    #[must_use]
    pub fn new(
        tenant: impl Into<String>,
        inner: Box<dyn BlockReserve + Send + Sync>,
        base: u64,
    ) -> Self {
        Self { tenant: tenant.into(), inner, base, issued: AtomicU64::new(0) }
    }

    /// The tenant's name.
    #[must_use]
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The stream offset this instance resumed at (`0` for a tenant's
    /// first instance).
    #[must_use]
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Values handed out by **this instance**. Exact at quiescence; while
    /// operations are in flight it may briefly exceed the values already
    /// visible to callers.
    #[must_use]
    pub fn issued(&self) -> u64 {
        // Relaxed: this is a statistic for callers *except* on the
        // eviction path, where exactness is guaranteed not by this load's
        // ordering but by sole ownership: the Acquire fence in
        // try_evict/evict_idle pairs with the last handle's release drop,
        // which happens-after that handle's final fetch_add below.
        self.issued.load(Ordering::Relaxed)
    }

    /// The tenant's high-water mark, `base + issued`: the next instance's
    /// resume offset. Exact at quiescence (the eviction path guarantees
    /// quiescence by requiring sole ownership).
    #[must_use]
    pub fn watermark(&self) -> u64 {
        self.base + self.issued()
    }

    /// One block reservation against the backend, offset into the
    /// tenant's stream.
    fn reserve(&self, thread_id: usize, k: usize) -> u64 {
        let raw = self.inner.reserve_block(thread_id, k);
        // Relaxed: the count is published to the eviction path by the
        // handle's release drop + the registry's Acquire fence (see
        // `issued`), not by this RMW's ordering.
        self.issued.fetch_add(k as u64, Ordering::Relaxed);
        self.base + raw
    }
}

impl SharedCounter for TenantCounter {
    fn next(&self, thread_id: usize) -> u64 {
        self.reserve(thread_id, 1)
    }

    fn next_batch(&self, thread_id: usize, k: usize, out: &mut Vec<u64>) {
        if k == 0 {
            return;
        }
        // Contiguous by construction: one block of k.
        let base = self.reserve(thread_id, k);
        out.extend(base..base + k as u64);
    }

    fn describe(&self) -> String {
        format!("{} [tenant {} @ {}]", self.inner.describe(), self.tenant, self.base)
    }
}

impl BlockReserve for TenantCounter {
    fn reserve_block(&self, thread_id: usize, k: usize) -> u64 {
        assert!(k > 0, "a block reservation needs at least one value");
        self.reserve(thread_id, k)
    }
}

/// The outcome of [`CounterService::try_evict`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictOutcome {
    /// The tenant was idle and has been retired; its stream resumes at
    /// `watermark` on the next [`CounterService::get_or_create`].
    Evicted {
        /// The tenant's recorded high-water mark.
        watermark: u64,
    },
    /// The tenant still has live handles (traffic in flight); nothing was
    /// changed.
    InUse,
    /// No live counter exists under that name.
    Absent,
}

/// One shard of the registry: live tenants plus the watermarks of
/// evicted ones (both keyed by tenant name, both only touched under this
/// shard's lock).
#[derive(Debug, Default)]
struct ShardState {
    live: HashMap<String, Arc<TenantCounter>>,
    watermarks: HashMap<String, u64>,
}

/// A sharded, concurrent registry of named counters — see the [module
/// docs](self) for the design.
///
/// ```
/// use counting_service::{CounterService, ServiceConfig};
/// use counting_runtime::SharedCounter;
///
/// let service = CounterService::new(ServiceConfig::default());
/// let flows = service.get_or_create("flows/10.0.0.7");
/// let tickets = service.get_or_create("checkout-queue");
/// assert_eq!(flows.next(0), 0);
/// assert_eq!(flows.next(1), 1);
/// assert_eq!(tickets.next(0), 0, "tenant streams are independent");
/// ```
#[derive(Debug)]
pub struct CounterService {
    config: ServiceConfig,
    /// Pre-built topology for [`Backend::Network`] tenants, so tenant
    /// creation pays one compilation, not one construction.
    template: Option<Network>,
    shards: Box<[RwLock<ShardState>]>,
}

impl CounterService {
    /// Creates an empty service.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero, or if `config.width` is not a
    /// power of two `>= 2` while a network-shaped backend is selected.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        assert!(config.shards > 0, "the registry needs at least one shard");
        let template = match config.backend {
            Backend::Network => Some(
                counting_network(config.width, config.width)
                    .expect("width must be a power of two >= 2"),
            ),
            Backend::Diffracting => {
                assert!(
                    config.width >= 2 && config.width.is_power_of_two(),
                    "width must be a power of two >= 2"
                );
                None
            }
            Backend::Central | Backend::Lock => None,
        };
        let shards = (0..config.shards).map(|_| RwLock::new(ShardState::default())).collect();
        Self { config, template, shards }
    }

    /// The service-wide construction policy.
    #[must_use]
    pub fn config(&self) -> ServiceConfig {
        self.config
    }

    /// The number of registry shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The number of live (non-evicted) tenants.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().live.len()).sum()
    }

    /// The names of all live tenants, in no particular order.
    #[must_use]
    pub fn tenants(&self) -> Vec<String> {
        self.shards.iter().flat_map(|s| s.read().live.keys().cloned().collect::<Vec<_>>()).collect()
    }

    fn shard_of(&self, tenant: &str) -> &RwLock<ShardState> {
        let mut hasher = DefaultHasher::new();
        tenant.hash(&mut hasher);
        &self.shards[(hasher.finish() % self.shards.len() as u64) as usize]
    }

    /// Builds a tenant's backend from the service config.
    fn build_backend(&self) -> Box<dyn BlockReserve + Send + Sync> {
        let w = self.config.width;
        let backend: Box<dyn BlockReserve + Send + Sync> = match self.config.backend {
            Backend::Network => Box::new(NetworkCounter::new(
                self.config.backend.label(w),
                self.template.as_ref().expect("network backend keeps a template"),
            )),
            Backend::Diffracting => {
                Box::new(DiffractingCounter::new(w, DIFFRACTING_PRISM_SIZE, DIFFRACTING_PRISM_SPIN))
            }
            Backend::Central => Box::new(CentralCounter::new()),
            Backend::Lock => Box::new(LockCounter::new()),
        };
        if self.config.elimination {
            let arena = EliminationConfig {
                strategy: self.config.strategy,
                ..EliminationConfig::default()
            };
            Box::new(EliminationCounter::with_config(backend, arena))
        } else {
            backend
        }
    }

    /// Returns the tenant's live counter, if one exists — the pure read
    /// path: one shard read lock, no construction.
    #[must_use]
    pub fn get(&self, tenant: &str) -> Option<Arc<TenantCounter>> {
        self.shard_of(tenant).read().live.get(tenant).map(Arc::clone)
    }

    /// Returns the tenant's counter, constructing it on first touch (or
    /// after an eviction, resuming at the recorded watermark).
    ///
    /// Concurrent callers racing on the same fresh tenant are serialized
    /// by the shard's write lock with a double-check, so exactly one
    /// counter is ever constructed per tenant lifetime — every caller
    /// gets a handle to the same instance.
    #[must_use]
    pub fn get_or_create(&self, tenant: &str) -> Arc<TenantCounter> {
        let shard = self.shard_of(tenant);
        if let Some(counter) = shard.read().live.get(tenant) {
            return Arc::clone(counter);
        }
        let mut state = shard.write();
        // Double-check: another creator may have won the race between our
        // read unlock and write lock.
        if let Some(counter) = state.live.get(tenant) {
            return Arc::clone(counter);
        }
        let base = state.watermarks.get(tenant).copied().unwrap_or(0);
        let counter = Arc::new(TenantCounter::new(tenant, self.build_backend(), base));
        state.live.insert(tenant.to_owned(), Arc::clone(&counter));
        counter
    }

    /// Retires `tenant` if — and only if — the registry is the sole owner
    /// of its counter.
    ///
    /// Sole ownership is observed under the shard's write lock, so no new
    /// handle can appear concurrently and no operation can be in flight:
    /// the recorded watermark is exact, and a later
    /// [`Self::get_or_create`] resumes the stream there. A tenant with
    /// outstanding handles is left untouched ([`EvictOutcome::InUse`]) —
    /// eviction can therefore *never* fork a tenant's value stream.
    pub fn try_evict(&self, tenant: &str) -> EvictOutcome {
        let mut state = self.shard_of(tenant).write();
        let Some(counter) = state.live.get(tenant) else {
            return EvictOutcome::Absent;
        };
        // Seeded model mutation (never active outside an exploration):
        // retire the tenant even with handles outstanding. An in-flight
        // reservation then escapes the watermark, the recreated instance
        // resumes too low, and the tenant's stream forks — the model
        // suite asserts the checker catches exactly this.
        let ignore_owners = crate::sync::mutation_enabled("evict-in-use");
        if !ignore_owners && Arc::strong_count(counter) > 1 {
            return EvictOutcome::InUse;
        }
        // Pairs with the release decrement of the last dropped handle:
        // everything that handle's thread did (its final `issued`
        // update included) is visible before we read the watermark.
        fence(Ordering::Acquire);
        let counter = state.live.remove(tenant).expect("checked above");
        let watermark = counter.watermark();
        state.watermarks.insert(tenant.to_owned(), watermark);
        EvictOutcome::Evicted { watermark }
    }

    /// Sweeps every shard, retiring all tenants without outstanding
    /// handles (same ownership rule as [`Self::try_evict`]). Returns how
    /// many tenants were evicted — the churn loop of a serving process
    /// calls this periodically to bound the registry's footprint.
    pub fn evict_idle(&self) -> usize {
        let mut evicted = 0;
        for shard in &self.shards {
            let mut state = shard.write();
            let idle: Vec<String> = state
                .live
                .iter()
                .filter(|(_, counter)| Arc::strong_count(counter) == 1)
                .map(|(tenant, _)| tenant.clone())
                .collect();
            if !idle.is_empty() {
                fence(Ordering::Acquire);
            }
            for tenant in idle {
                let counter = state.live.remove(&tenant).expect("collected above");
                state.watermarks.insert(tenant, counter.watermark());
                evicted += 1;
            }
        }
        evicted
    }

    /// The tenant's high-water mark: `base + issued` for a live tenant
    /// (exact at quiescence), the recorded watermark for an evicted one,
    /// `0` for a name never seen.
    #[must_use]
    pub fn watermark(&self, tenant: &str) -> u64 {
        let state = self.shard_of(tenant).read();
        match state.live.get(tenant) {
            Some(counter) => counter.watermark(),
            None => state.watermarks.get(tenant).copied().unwrap_or(0),
        }
    }

    /// Seeds the recorded watermark for `tenant`, as if an earlier
    /// instance had been evicted at that mark: the next
    /// [`Self::get_or_create`] resumes the stream there.
    ///
    /// This is the durable-restart seam used by `counting-cluster`: a
    /// node that crashes and comes back rebuilds a *fresh* registry and
    /// replays its persisted watermarks through this method, recovering
    /// each tenant's stream exactly the way eviction-resume recovers it
    /// within one process lifetime. Restoration is monotonic (the larger
    /// of the stored and offered marks wins), so replaying stale
    /// recovery records can never rewind a stream. Returns `false`
    /// without changing anything if the tenant is currently live — a
    /// live stream's watermark is owned by its counter, not the caller.
    pub fn restore_watermark(&self, tenant: &str, watermark: u64) -> bool {
        let mut state = self.shard_of(tenant).write();
        if state.live.contains_key(tenant) {
            return false;
        }
        let entry = state.watermarks.entry(tenant.to_owned()).or_insert(0);
        *entry = (*entry).max(watermark);
        true
    }

    /// A per-thread [`IdGenerator`] leasing `lease_size` ids per refill
    /// from the tenant's counter (created on first touch). The generator
    /// holds a tenant handle, so the tenant stays live — and its leased
    /// ids accounted — until the generator is dropped.
    #[must_use]
    pub fn id_generator(&self, tenant: &str, thread_id: usize, lease_size: usize) -> IdGenerator {
        IdGenerator::new(self.get_or_create(tenant), thread_id, lease_size)
    }

    /// A [`TicketGate`] dispensing tickets from the tenant's counter
    /// (created on first touch). Admission state lives in the gate:
    /// callers that need one shared admission cursor share the gate (it
    /// is `Sync`), not merely the tenant.
    #[must_use]
    pub fn ticket_gate(&self, tenant: &str) -> TicketGate {
        TicketGate::new(self.get_or_create(tenant))
    }

    /// A [`RateLimiter`] admitting `limit` requests per window, counted
    /// on the tenant's counter (created on first touch). Like the gate,
    /// the window state lives in the limiter — share it.
    #[must_use]
    pub fn rate_limiter(&self, tenant: &str, limit: u64) -> RateLimiter {
        RateLimiter::new(self.get_or_create(tenant), limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn network_service(elimination: bool) -> CounterService {
        CounterService::new(ServiceConfig {
            backend: Backend::Network,
            width: 4,
            elimination,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn config_labels_name_backend_and_wrapping() {
        let raw = ServiceConfig { elimination: false, ..ServiceConfig::default() };
        assert_eq!(raw.label(), "C(16,16)");
        let elim = ServiceConfig { strategy: WaitStrategy::Park, ..ServiceConfig::default() };
        assert_eq!(elim.label(), "C(16,16)+elim[park]");
        assert_eq!(Backend::Diffracting.label(8), "DiffTree[8]");
        assert_eq!(Backend::Central.label(8), "central");
        assert_eq!(Backend::Lock.label(8), "mutex");
    }

    #[test]
    fn get_or_create_returns_the_same_instance() {
        let service = network_service(false);
        let a = service.get_or_create("alpha");
        let b = service.get_or_create("alpha");
        assert!(Arc::ptr_eq(&a, &b), "one counter per tenant");
        assert_eq!(service.tenant_count(), 1);
        assert!(service.get("alpha").is_some());
        assert!(service.get("beta").is_none());
    }

    #[test]
    fn tenant_streams_are_independent_and_exact_range() {
        let service = network_service(false);
        let a = service.get_or_create("a");
        let b = service.get_or_create("b");
        let mut a_values = Vec::new();
        let mut b_values = Vec::new();
        // Mixed batch sizes and an op count with no divisibility relation
        // to the network width: block reservations tile regardless.
        for (i, k) in [3usize, 1, 7, 2, 5].into_iter().enumerate() {
            a.next_batch(i, k, &mut a_values);
            b_values.push(b.next(i));
        }
        a_values.sort_unstable();
        assert_eq!(a_values, (0..18).collect::<Vec<u64>>());
        assert_eq!(b_values, (0..5).collect::<Vec<u64>>());
        assert_eq!(a.watermark(), 18);
        assert_eq!(service.watermark("b"), 5);
    }

    #[test]
    fn every_backend_constructs_and_counts() {
        for backend in Backend::ALL {
            for elimination in [false, true] {
                let service = CounterService::new(ServiceConfig {
                    backend,
                    width: 4,
                    elimination,
                    ..ServiceConfig::default()
                });
                let counter = service.get_or_create("t");
                let mut values: Vec<u64> = (0..6).map(|i| counter.next(i)).collect();
                let mut batch = Vec::new();
                counter.next_batch(0, 3, &mut batch);
                values.extend(batch);
                values.sort_unstable();
                assert_eq!(values, (0..9).collect::<Vec<u64>>(), "{backend:?}/{elimination}");
                if elimination {
                    assert!(counter.describe().contains("elim"), "{}", counter.describe());
                }
                assert!(counter.describe().contains("tenant t"), "{}", counter.describe());
            }
        }
    }

    #[test]
    fn racing_get_or_create_yields_one_counter() {
        let service = network_service(true);
        let handles: Vec<Arc<TenantCounter>> = std::thread::scope(|scope| {
            let workers: Vec<_> =
                (0..8).map(|_| scope.spawn(|| service.get_or_create("contended"))).collect();
            workers.into_iter().map(|w| w.join().expect("no panic")).collect()
        });
        let first = &handles[0];
        assert!(handles.iter().all(|h| Arc::ptr_eq(first, h)), "all racers share one instance");
        assert_eq!(service.tenant_count(), 1);
    }

    #[test]
    fn eviction_requires_sole_ownership_and_resumes_the_stream() {
        let service = network_service(false);
        let counter = service.get_or_create("churny");
        assert_eq!(counter.next(0), 0);
        assert_eq!(counter.next(1), 1);
        assert_eq!(service.try_evict("churny"), EvictOutcome::InUse, "a handle is out");
        drop(counter);
        assert_eq!(service.try_evict("churny"), EvictOutcome::Evicted { watermark: 2 });
        assert_eq!(service.try_evict("churny"), EvictOutcome::Absent);
        assert_eq!(service.watermark("churny"), 2, "watermark survives the eviction");
        // Re-creation resumes, so the tenant's stream never repeats.
        let revived = service.get_or_create("churny");
        assert_eq!(revived.base(), 2);
        assert_eq!(revived.next(0), 2);
        assert_eq!(service.watermark("churny"), 3);
    }

    #[test]
    fn evict_idle_sweeps_only_idle_tenants() {
        let service = network_service(false);
        let held = service.get_or_create("held");
        let _ = held.next(0);
        for name in ["idle-1", "idle-2", "idle-3"] {
            let counter = service.get_or_create(name);
            let _ = counter.next(0);
        }
        assert_eq!(service.tenant_count(), 4);
        assert_eq!(service.evict_idle(), 3, "the held tenant survives");
        assert_eq!(service.tenant_count(), 1);
        assert!(service.get("held").is_some());
        assert_eq!(service.watermark("idle-1"), 1);
        assert_eq!(held.next(0), 1, "the survivor keeps counting");
    }

    #[test]
    fn watermark_is_zero_for_unknown_tenants() {
        let service = network_service(false);
        assert_eq!(service.watermark("never-seen"), 0);
    }

    #[test]
    fn restore_watermark_resumes_like_an_eviction() {
        // A "restarted process": fresh registry, watermark replayed from
        // durable state instead of recorded by an eviction.
        let service = network_service(false);
        assert!(service.restore_watermark("stream", 7));
        assert_eq!(service.watermark("stream"), 7);
        let revived = service.get_or_create("stream");
        assert_eq!(revived.base(), 7);
        assert_eq!(revived.next(0), 7, "the stream resumes past the restart");

        // Monotonic: a stale (lower) recovery record cannot rewind.
        drop(revived);
        assert_eq!(service.try_evict("stream"), EvictOutcome::Evicted { watermark: 8 });
        assert!(service.restore_watermark("stream", 3));
        assert_eq!(service.watermark("stream"), 8);

        // A live tenant owns its own watermark — restoration refuses.
        let live = service.get_or_create("stream");
        assert!(!service.restore_watermark("stream", 100));
        assert_eq!(live.base(), 8);
    }

    #[test]
    fn tenants_lists_live_names() {
        let service = network_service(false);
        let _a = service.get_or_create("a");
        let _b = service.get_or_create("b");
        let names: HashSet<String> = service.tenants().into_iter().collect();
        assert_eq!(names, HashSet::from(["a".to_owned(), "b".to_owned()]));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = CounterService::new(ServiceConfig { shards: 0, ..ServiceConfig::default() });
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_width_rejected() {
        let _ = CounterService::new(ServiceConfig { width: 6, ..ServiceConfig::default() });
    }
}
