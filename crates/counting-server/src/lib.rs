//! An HTTP/1.1 admission and id service in front of the multi-tenant
//! counter registry — the layer that turns "millions of users" from a
//! thread loop into connections.
//!
//! Every endpoint is a thin transport over a [`counting_service`]
//! adapter, so the serving path inherits the paper's guarantees
//! (unique, dense values from the counting network) end to end:
//!
//! - `GET /ticket/{tenant}` — draw a waiting-room ticket
//!   ([`counting_service::TicketGate::acquire`])
//! - `GET /admit/{tenant}?n=` — release up to `n` waiting-room slots
//! - `GET /status/{tenant}?ticket=` — waiting-room snapshot / admission poll
//! - `GET /lease/{tenant}?k=` — reserve a contiguous id block
//! - `GET /rate/{tenant}?window=` — windowed rate-limit admission
//!
//! The server is deliberately plain: a blocking accept loop feeding a
//! fixed worker-thread pool (see [`server`] for why there is no async
//! runtime), a hand-rolled request parser covering exactly the subset
//! the endpoints need ([`http`]), and JSON bodies serialized with the
//! vendored `serde_json`. The interesting concurrency stays where the
//! paper puts it: in the counting network behind the registry.
//!
//! # Quickstart
//!
//! ```
//! use counting_server::client::ClientConnection;
//! use counting_server::router::TicketBody;
//! use counting_server::server::CountingServer;
//! use counting_server::state::ServerConfig;
//!
//! let server = CountingServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
//! let mut client = ClientConnection::new(server.local_addr());
//!
//! let response = client.get("/ticket/checkout").unwrap();
//! let body: TicketBody = serde_json::from_str(&response.body).unwrap();
//! assert_eq!(body.ticket, 0, "first arrival gets ticket 0");
//!
//! server.shutdown(); // joins every worker thread
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod router;
pub mod server;
pub mod state;

pub use client::{ClientConnection, ClientResponse};
pub use router::{AdmitBody, LeaseBody, RateBody, StatusBody, TicketBody};
pub use server::CountingServer;
pub use state::{AppState, ServerConfig, ServerStats};
