//! A minimal blocking HTTP/1.1 client for the admission endpoints.
//!
//! One [`ClientConnection`] is one keep-alive socket. The load generator
//! multiplexes many simulated clients over a few of these; the e2e test
//! gives each hammering thread its own. The parser accepts exactly what
//! [`crate::server`] emits (status line, `Content-Length` framing) — it
//! is a test harness, not a general HTTP client.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A keep-alive connection to a [`crate::server::CountingServer`].
///
/// Reconnects transparently when the server closed the previous
/// exchange (`Connection: close`), so callers can treat it as an
/// always-usable request channel.
#[derive(Debug)]
pub struct ClientConnection {
    addr: SocketAddr,
    conn: Option<Conn>,
}

#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// One response: status code and body text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body (JSON for every server endpoint).
    pub body: String,
}

impl ClientConnection {
    /// Creates a lazily-connected channel to `addr`.
    #[must_use]
    pub fn new(addr: SocketAddr) -> Self {
        Self { addr, conn: None }
    }

    /// Sends `GET {target}` and reads the response.
    ///
    /// `target` is the path plus optional query, e.g. `/ticket/q` or
    /// `/lease/q?k=8`.
    pub fn get(&mut self, target: &str) -> io::Result<ClientResponse> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            // A generous timeout so a harness never hangs on a server
            // that died mid-exchange.
            stream.set_read_timeout(Some(std::time::Duration::from_secs(10)))?;
            let reader = BufReader::new(stream.try_clone()?);
            self.conn = Some(Conn { reader, writer: stream });
        }
        let conn = self.conn.as_mut().expect("connection was just established");
        let result = Self::exchange(conn, target);
        match result {
            Ok((response, keep_alive)) => {
                if !keep_alive {
                    self.conn = None;
                }
                Ok(response)
            }
            Err(e) => {
                // Don't reuse a connection in an unknown protocol state.
                self.conn = None;
                Err(e)
            }
        }
    }

    /// Sends `GET {target}`, reconnecting and retrying on I/O failure,
    /// up to `attempts` total tries with a short exponential backoff.
    ///
    /// On exhaustion the *underlying* [`io::Error`] is surfaced — the
    /// last failure's [`io::ErrorKind`] and message, wrapped with the
    /// attempt count — never a generic "retries exhausted" error. A
    /// caller can still tell a refused connection from a mid-exchange
    /// timeout after the loop gives up.
    pub fn get_with_retries(&mut self, target: &str, attempts: u32) -> io::Result<ClientResponse> {
        assert!(attempts > 0, "at least one attempt is required");
        let mut last: Option<io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(std::time::Duration::from_millis(10 << attempt.min(5)));
            }
            match self.get(target) {
                Ok(response) => return Ok(response),
                Err(e) => last = Some(e),
            }
        }
        let last = last.expect("attempts > 0 implies a recorded error");
        Err(io::Error::new(
            last.kind(),
            format!("GET {target} failed after {attempts} attempts; last error: {last}"),
        ))
    }

    fn exchange(conn: &mut Conn, target: &str) -> io::Result<(ClientResponse, bool)> {
        write!(
            conn.writer,
            "GET {target} HTTP/1.1\r\nHost: counting\r\nConnection: keep-alive\r\n\r\n"
        )?;
        conn.writer.flush()?;

        let mut line = String::new();
        conn.reader.read_line(&mut line)?;
        let status = parse_status_line(line.trim_end()).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad status line: {line:?}"))
        })?;

        let mut content_length: usize = 0;
        let mut keep_alive = true;
        loop {
            line.clear();
            if conn.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof in headers"));
            }
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length")
                    })?;
                } else if name.eq_ignore_ascii_case("connection")
                    && value.eq_ignore_ascii_case("close")
                {
                    keep_alive = false;
                }
            }
        }

        let mut body = vec![0u8; content_length];
        conn.reader.read_exact(&mut body)?;
        let body = String::from_utf8(body)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 body"))?;
        Ok((ClientResponse { status, body }, keep_alive))
    }
}

fn parse_status_line(line: &str) -> Option<u16> {
    let mut parts = line.split_ascii_whitespace();
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    parts.next()?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CountingServer;
    use crate::state::ServerConfig;

    #[test]
    fn round_trips_against_a_live_server() {
        let server = CountingServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = ClientConnection::new(server.local_addr());

        let first = client.get("/ticket/q").unwrap();
        assert_eq!(first.status, 200);
        let second = client.get("/ticket/q").unwrap();
        assert_eq!(second.status, 200);
        assert_ne!(first.body, second.body, "tickets are unique");

        let missing = client.get("/nope/q").unwrap();
        assert_eq!(missing.status, 404);

        server.shutdown();
    }

    #[test]
    fn reconnects_after_a_server_side_close() {
        let server = CountingServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = ClientConnection::new(server.local_addr());
        // Malformed query → 400; the route answers but keeps the
        // connection (only protocol errors close). Force a close by
        // asking the server directly with Connection: close semantics:
        // a fresh connection per request still works through the same
        // handle because the channel reconnects lazily.
        assert_eq!(client.get("/lease/q?k=0").unwrap().status, 400);
        assert_eq!(client.get("/lease/q?k=2").unwrap().status, 200);
        server.shutdown();
    }

    #[test]
    fn retry_exhaustion_surfaces_the_underlying_error() {
        // Bind-then-drop yields an address with no listener: every
        // attempt is refused.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let mut client = ClientConnection::new(addr);
        let err = client.get_with_retries("/ticket/q", 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionRefused, "kind must survive: {err}");
        let text = err.to_string();
        assert!(text.contains("/ticket/q"), "names the request: {text}");
        assert!(text.contains("2 attempts"), "names the attempt count: {text}");
        assert!(
            text.to_ascii_lowercase().contains("refused"),
            "the underlying error must be visible, not a generic message: {text}"
        );
    }

    #[test]
    fn retries_succeed_against_a_live_server() {
        let server = CountingServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
        let mut client = ClientConnection::new(server.local_addr());
        let resp = client.get_with_retries("/ticket/q", 3).unwrap();
        assert_eq!(resp.status, 200);
        server.shutdown();
    }
}
