//! Endpoint dispatch: one function from parsed request to JSON response.
//!
//! | Route | Adapter | Semantics |
//! |---|---|---|
//! | `/ticket/{t}` | [`TicketGate::acquire`] | Draw a waiting-room ticket |
//! | `/admit/{t}?n=` | [`TicketGate::admit`] | Release up to `n` slots |
//! | `/status/{t}[?ticket=]` | [`TicketGate`] | Waiting-room snapshot / poll |
//! | `/lease/{t}?k=` | `TenantCounter::reserve_block` | Contiguous id block |
//! | `/rate/{t}?window=` | [`RateLimiter::try_acquire`] | Windowed admission |
//!
//! Methods are not distinguished: the service is an admission plane, not
//! a REST resource model, and every operation is a counter draw (safe to
//! retry at the protocol level, never idempotent in the payload). `GET`
//! keeps the load generator and `curl` trivial.
//!
//! [`TicketGate::acquire`]: counting_service::TicketGate::acquire
//! [`TicketGate::admit`]: counting_service::TicketGate::admit
//! [`TicketGate`]: counting_service::TicketGate
//! [`RateLimiter::try_acquire`]: counting_service::RateLimiter::try_acquire

use serde::{Deserialize, Serialize};

use crate::http::{Request, Response};
use crate::state::AppState;

/// Body of a `/ticket/{tenant}` response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TicketBody {
    /// Tenant the ticket belongs to.
    pub tenant: String,
    /// The dense ticket number (position in the arrival order).
    pub ticket: u64,
    /// The gate's admission bound at response time.
    pub now_serving: u64,
    /// Whether the ticket was already admitted when drawn.
    pub admitted: bool,
}

/// Body of a `/lease/{tenant}?k=` response: the contiguous id block
/// `start..start + count`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseBody {
    /// Tenant the block was reserved from.
    pub tenant: String,
    /// First id in the block.
    pub start: u64,
    /// Number of ids in the block.
    pub count: u64,
}

/// Body of an `/admit/{tenant}?n=` response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmitBody {
    /// Tenant whose gate was advanced.
    pub tenant: String,
    /// Slots requested by the caller.
    pub requested: u64,
    /// Slots actually granted (clamped to tickets dispensed so far).
    pub granted: u64,
    /// The admission bound after this release.
    pub now_serving: u64,
}

/// Body of a `/rate/{tenant}?window=` response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RateBody {
    /// Tenant whose limiter judged the request.
    pub tenant: String,
    /// The window the request named.
    pub window: u64,
    /// Whether the request fit the window's budget.
    pub admitted: bool,
    /// The per-window budget.
    pub limit: u64,
}

/// Body of a `/status/{tenant}[?ticket=]` response: a waiting-room
/// snapshot, plus the admission verdict for `ticket` when supplied.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatusBody {
    /// Tenant being inspected.
    pub tenant: String,
    /// The gate's admission bound.
    pub now_serving: u64,
    /// Tickets dispensed so far.
    pub dispensed: u64,
    /// Tickets dispensed but not yet admitted.
    pub waiting: u64,
    /// Echo of the polled ticket, if one was supplied.
    pub ticket: Option<u64>,
    /// Admission verdict for the polled ticket, if one was supplied.
    pub admitted: Option<bool>,
}

fn json<T: Serialize>(body: &T) -> Response {
    match serde_json::to_string(body) {
        Ok(text) => Response::ok(text),
        Err(_) => Response { status: 500, body: "{\"error\":\"serialization\"}".to_owned() },
    }
}

/// Dispatches one request. `worker_id` feeds the counters' thread-id
/// argument so concurrent workers spread across balancer input wires.
pub fn route(state: &AppState, worker_id: usize, request: &Request) -> Response {
    let response = dispatch(state, worker_id, request);
    if response.status >= 400 {
        state.stats.client_errors.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
    response
}

fn dispatch(state: &AppState, worker_id: usize, request: &Request) -> Response {
    use std::sync::atomic::Ordering::Relaxed;

    let [endpoint, tenant] = match request.segments.as_slice() {
        [e, t] => [e.as_str(), t.as_str()],
        _ => return Response::error(404, "expected /{endpoint}/{tenant}"),
    };
    if !AppState::valid_tenant(tenant) {
        return Response::error(400, "tenant names are [A-Za-z0-9._-], at most 64 bytes");
    }

    match endpoint {
        "ticket" => {
            let gate = state.gate(tenant);
            let ticket = gate.acquire(worker_id);
            let now_serving = gate.now_serving();
            state.stats.ticket.fetch_add(1, Relaxed);
            json(&TicketBody {
                tenant: tenant.to_owned(),
                ticket,
                now_serving,
                admitted: ticket < now_serving,
            })
        }
        "lease" => {
            let k = match request.query_u64("k") {
                Ok(k) => k.unwrap_or(1),
                Err(msg) => return Response::error(400, &msg),
            };
            if k == 0 || k > state.max_lease() as u64 {
                return Response::error(400, &format!("k must be in 1..={}", state.max_lease()));
            }
            let start = state.lease(tenant, worker_id, k as usize);
            state.stats.lease.fetch_add(1, Relaxed);
            json(&LeaseBody { tenant: tenant.to_owned(), start, count: k })
        }
        "admit" => {
            let n = match request.query_u64("n") {
                Ok(n) => n.unwrap_or(1),
                Err(msg) => return Response::error(400, &msg),
            };
            let gate = state.gate(tenant);
            let before = gate.now_serving();
            let now_serving = gate.admit(n);
            state.stats.admit.fetch_add(1, Relaxed);
            json(&AdmitBody {
                tenant: tenant.to_owned(),
                requested: n,
                // Lower bound under concurrent admits; exact when this
                // caller is the sole admitter (the usual deployment).
                granted: now_serving.saturating_sub(before),
                now_serving,
            })
        }
        "rate" => {
            let limiter = state.limiter(tenant);
            let window = match request.query_u64("window") {
                Ok(w) => w.unwrap_or_else(|| limiter.current_window()),
                Err(msg) => return Response::error(400, &msg),
            };
            let admitted = limiter.try_acquire(worker_id, window);
            state.stats.rate.fetch_add(1, Relaxed);
            json(&RateBody { tenant: tenant.to_owned(), window, admitted, limit: limiter.limit() })
        }
        "status" => {
            let gate = state.gate(tenant);
            let ticket = match request.query_u64("ticket") {
                Ok(t) => t,
                Err(msg) => return Response::error(400, &msg),
            };
            let now_serving = gate.now_serving();
            let dispensed = gate.dispensed();
            state.stats.status.fetch_add(1, Relaxed);
            json(&StatusBody {
                tenant: tenant.to_owned(),
                now_serving,
                dispensed,
                waiting: dispensed.saturating_sub(now_serving),
                ticket,
                admitted: ticket.map(|t| gate.is_admitted(t)),
            })
        }
        _ => Response::error(404, "unknown endpoint"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::ServerConfig;

    fn req(path: &str) -> Request {
        let raw = format!("GET {path} HTTP/1.1\r\n\r\n");
        let mut reader = std::io::BufReader::new(raw.as_bytes());
        match crate::http::read_request(&mut reader).unwrap() {
            crate::http::ReadOutcome::Request(r) => r,
            other => panic!("fixture should parse: {other:?}"),
        }
    }

    #[test]
    fn ticket_then_admit_then_status_round_trip() {
        let state = AppState::new(&ServerConfig::default());

        let resp = route(&state, 0, &req("/ticket/q"));
        assert_eq!(resp.status, 200);
        let body: TicketBody = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(body.ticket, 0);
        assert!(!body.admitted, "nothing admitted yet");

        let resp = route(&state, 0, &req("/admit/q?n=5"));
        let body: AdmitBody = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(body.requested, 5);
        assert_eq!(body.granted, 1, "only one ticket was dispensed");
        assert_eq!(body.now_serving, 1);

        let resp = route(&state, 0, &req("/status/q?ticket=0"));
        let body: StatusBody = serde_json::from_str(&resp.body).unwrap();
        assert_eq!(body.admitted, Some(true));
        assert_eq!(body.waiting, 0);
    }

    #[test]
    fn lease_blocks_are_contiguous_and_validated() {
        let state = AppState::new(&ServerConfig::default());
        let resp = route(&state, 0, &req("/lease/ids?k=8"));
        let body: LeaseBody = serde_json::from_str(&resp.body).unwrap();
        assert_eq!((body.start, body.count), (0, 8));
        let resp = route(&state, 1, &req("/lease/ids"));
        let body: LeaseBody = serde_json::from_str(&resp.body).unwrap();
        assert_eq!((body.start, body.count), (8, 1), "k defaults to 1");

        assert_eq!(route(&state, 0, &req("/lease/ids?k=0")).status, 400);
        assert_eq!(route(&state, 0, &req("/lease/ids?k=9999999")).status, 400);
        assert_eq!(route(&state, 0, &req("/lease/ids?k=soon")).status, 400);
    }

    #[test]
    fn rate_windows_shed_after_the_budget() {
        let config = ServerConfig { rate_limit: 2, ..ServerConfig::default() };
        let state = AppState::new(&config);
        let admitted = (0..4)
            .map(|_| {
                let resp = route(&state, 0, &req("/rate/api?window=3"));
                let body: RateBody = serde_json::from_str(&resp.body).unwrap();
                assert_eq!(body.limit, 2);
                body.admitted
            })
            .collect::<Vec<_>>();
        assert_eq!(admitted, [true, true, false, false]);
    }

    #[test]
    fn unknown_routes_and_bad_tenants_are_refused() {
        let state = AppState::new(&ServerConfig::default());
        assert_eq!(route(&state, 0, &req("/nope/q")).status, 404);
        assert_eq!(route(&state, 0, &req("/ticket")).status, 404);
        assert_eq!(route(&state, 0, &req("/ticket/a/b")).status, 404);
        assert_eq!(route(&state, 0, &req("/ticket/bad%20name")).status, 400);
        assert_eq!(state.stats.client_errors.load(std::sync::atomic::Ordering::Relaxed), 4);
    }
}
