//! The serving loop: a blocking acceptor thread plus a fixed pool of
//! worker threads draining a shared connection queue.
//!
//! Shape and trade-offs:
//!
//! - **No async runtime.** The vendored build has no executor, and the
//!   request path is a handful of atomic operations — the interesting
//!   contention is *inside* the counters, not in the I/O layer. Blocking
//!   threads keep the transport boring so the backends stay the subject
//!   of measurement.
//! - **A worker owns one connection at a time** and serves keep-alive
//!   requests off it until the peer closes (or shutdown). Concurrency
//!   for persistent connections therefore equals the pool size; extra
//!   connections wait in the accept queue until a worker frees up. The
//!   load generator multiplexes its thousands of simulated clients over
//!   a matching number of sockets, which is also how the paper-side
//!   experiments map millions of tokens onto `p` threads.
//! - **Shutdown is cooperative.** Sockets carry a short read timeout;
//!   between requests a worker observes the timeout as "idle", rechecks
//!   the shutdown flag, and keeps waiting or exits. The acceptor is
//!   woken by a loopback connection. `shutdown()` joins every thread, so
//!   a returned `shutdown()` means no worker is left running.

use std::collections::VecDeque;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::http::{read_request, write_response, ReadOutcome, Response};
use crate::router::route;
use crate::state::{AppState, ServerConfig, ServerStats};

/// Read timeout on accepted sockets; also the shutdown-poll cadence for
/// idle keep-alive connections.
const IDLE_POLL: Duration = Duration::from_millis(50);

struct ConnQueue {
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
}

impl ConnQueue {
    fn push(&self, stream: TcpStream) {
        self.queue.lock().push_back(stream);
        self.available.notify_one();
    }

    /// Blocks until a connection is available or shutdown is flagged.
    fn pop(&self, shutdown: &AtomicBool) -> Option<TcpStream> {
        let mut queue = self.queue.lock();
        loop {
            if let Some(stream) = queue.pop_front() {
                return Some(stream);
            }
            if shutdown.load(Ordering::Acquire) {
                return None;
            }
            // Bounded wait so a missed notify can never strand a worker.
            let _ = self.available.wait_for(&mut queue, IDLE_POLL);
        }
    }
}

/// A running server: call [`CountingServer::start`] to bind and serve,
/// [`CountingServer::shutdown`] to stop and join every thread.
pub struct CountingServer {
    addr: SocketAddr,
    state: Arc<AppState>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for CountingServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountingServer")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl CountingServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor and `config.workers` workers.
    pub fn start(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(AppState::new(&config));
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue =
            Arc::new(ConnQueue { queue: Mutex::new(VecDeque::new()), available: Condvar::new() });

        let workers = (0..config.workers.max(1))
            .map(|worker_id| {
                let state = Arc::clone(&state);
                let shutdown = Arc::clone(&shutdown);
                let queue = Arc::clone(&queue);
                std::thread::Builder::new()
                    .name(format!("counting-server-worker-{worker_id}"))
                    .spawn(move || {
                        while let Some(stream) = queue.pop(&shutdown) {
                            serve_connection(&state, worker_id, stream, &shutdown);
                        }
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;

        let acceptor = {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new().name("counting-server-acceptor".to_owned()).spawn(
                move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        if stream.set_read_timeout(Some(IDLE_POLL)).is_err()
                            || stream.set_nodelay(true).is_err()
                        {
                            continue;
                        }
                        state.stats.connections.fetch_add(1, Ordering::Relaxed);
                        queue.push(stream);
                    }
                },
            )?
        };

        Ok(Self { addr, state, shutdown, acceptor: Some(acceptor), workers })
    }

    /// The bound address (the actual port when started with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state behind the endpoints; in-process harnesses read
    /// watermarks and stats through this.
    #[must_use]
    pub fn state(&self) -> &Arc<AppState> {
        &self.state
    }

    /// Served-request counters.
    #[must_use]
    pub fn stats(&self) -> &ServerStats {
        &self.state.stats
    }

    /// Stops accepting, drains the pool, and joins every thread. After
    /// this returns no server thread is left running.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the acceptor out of its blocking accept. The connection
        // is queued and immediately dropped by whichever worker takes it
        // (shutdown is already flagged); failure just means the listener
        // is already gone.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for CountingServer {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.stop_and_join();
        }
    }
}

/// Serves keep-alive requests off one connection until the peer closes,
/// the protocol breaks, or shutdown is flagged.
fn serve_connection(state: &AppState, worker_id: usize, stream: TcpStream, shutdown: &AtomicBool) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    loop {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        match read_request(&mut reader) {
            Ok(ReadOutcome::Request(request)) => {
                let response = route(state, worker_id, &request);
                let keep_alive = request.keep_alive && !shutdown.load(Ordering::Acquire);
                if write_response(&mut writer, &response, keep_alive).is_err() || !keep_alive {
                    return;
                }
            }
            // Idle: the read timed out between requests — loop to poll
            // the shutdown flag, keep the connection.
            Ok(ReadOutcome::Idle) => {}
            Ok(ReadOutcome::Closed) => return,
            Ok(ReadOutcome::Malformed(message)) => {
                let _ = write_response(&mut writer, &Response::error(400, &message), false);
                state.stats.client_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_on_ephemeral_port_and_shuts_down_cleanly() {
        let server = CountingServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0, "ephemeral port should be resolved");
        server.shutdown();
        // The listener is gone: a fresh bind to the same port succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port should be released after shutdown: {rebound:?}");
    }

    #[test]
    fn shutdown_returns_even_with_an_idle_keep_alive_connection() {
        let server = CountingServer::start("127.0.0.1:0", ServerConfig::default()).unwrap();
        // Open a connection and send nothing: a worker parks on it with
        // the idle-poll timeout.
        let idle = TcpStream::connect(server.local_addr()).unwrap();
        std::thread::sleep(Duration::from_millis(100));
        server.shutdown();
        drop(idle);
    }
}
