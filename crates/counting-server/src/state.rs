//! Shared server state: the [`CounterService`] registry plus per-tenant
//! adapter caches.
//!
//! Each endpoint family draws from its **own** tenant stream in the
//! underlying registry — `/ticket/q` and `/lease/q` do not share a
//! counter even though both say `q`. This matters for two guarantees:
//!
//! - the waiting-room gate ([`TicketGate`]) assumes it is the sole
//!   consumer of its counter, so its tickets are dense (`0..dispensed`)
//!   and its admission bound can be clamped to what was dispensed;
//! - the lease endpoint's exact-range property (`0..watermark` with no
//!   holes) would be broken by interleaved ticket draws.
//!
//! Scoping is a name prefix (`ticket:q`, `lease:q`, `rate:q`), so the
//! registry's eviction and watermark machinery applies per family.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use counting_service::{CounterService, RateLimiter, ServiceConfig, TicketGate};
use parking_lot::RwLock;

/// Longest tenant name the server accepts.
pub const MAX_TENANT_LEN: usize = 64;

/// Server tuning knobs. The service config decides which counting
/// backend every tenant stream runs on, so one switch turns the whole
/// server into a network-vs-central end-to-end comparison.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Registry configuration (backend, width, elimination, shards).
    pub service: ServiceConfig,
    /// Fixed worker-pool size. Each worker owns one connection at a
    /// time, so this is also the keep-alive connection capacity.
    pub workers: usize,
    /// Per-window budget handed to every `/rate/{tenant}` limiter.
    pub rate_limit: u64,
    /// Largest `k` accepted by `/lease/{tenant}?k=`.
    pub max_lease: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { service: ServiceConfig::default(), workers: 4, rate_limit: 64, max_lease: 1024 }
    }
}

/// Per-endpoint served-request counters, updated by workers and read by
/// tests and the load generator. Monotone; exact at quiescence.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// `/ticket` requests answered.
    pub ticket: AtomicU64,
    /// `/lease` requests answered.
    pub lease: AtomicU64,
    /// `/admit` requests answered.
    pub admit: AtomicU64,
    /// `/rate` requests answered.
    pub rate: AtomicU64,
    /// `/status` requests answered.
    pub status: AtomicU64,
    /// Requests answered with a 4xx.
    pub client_errors: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
}

impl ServerStats {
    /// Total successful (non-4xx) requests served.
    pub fn served(&self) -> u64 {
        self.ticket.load(Ordering::Relaxed)
            + self.lease.load(Ordering::Relaxed)
            + self.admit.load(Ordering::Relaxed)
            + self.rate.load(Ordering::Relaxed)
            + self.status.load(Ordering::Relaxed)
    }
}

/// Everything a worker needs to answer a request: the registry, the
/// adapter caches, limits, and stats.
pub struct AppState {
    service: CounterService,
    rate_limit: u64,
    max_lease: usize,
    gates: RwLock<HashMap<String, Arc<TicketGate>>>,
    limiters: RwLock<HashMap<String, Arc<RateLimiter>>>,
    /// Served-request counters (public so the router can bump them).
    pub stats: ServerStats,
}

impl std::fmt::Debug for AppState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppState")
            .field("backend", &self.service.config().label())
            .field("rate_limit", &self.rate_limit)
            .field("max_lease", &self.max_lease)
            .finish_non_exhaustive()
    }
}

impl AppState {
    /// Builds the state for `config`, with an empty registry.
    #[must_use]
    pub fn new(config: &ServerConfig) -> Self {
        Self {
            service: CounterService::new(config.service),
            rate_limit: config.rate_limit,
            max_lease: config.max_lease,
            gates: RwLock::new(HashMap::new()),
            limiters: RwLock::new(HashMap::new()),
            stats: ServerStats::default(),
        }
    }

    /// The underlying registry (tests inspect watermarks through this).
    #[must_use]
    pub fn service(&self) -> &CounterService {
        &self.service
    }

    /// Largest `k` the lease endpoint accepts.
    #[must_use]
    pub fn max_lease(&self) -> usize {
        self.max_lease
    }

    /// True when `tenant` is non-empty, within [`MAX_TENANT_LEN`], and
    /// uses only `[A-Za-z0-9._-]` — the charset that keeps scoped
    /// registry keys unambiguous.
    #[must_use]
    pub fn valid_tenant(tenant: &str) -> bool {
        !tenant.is_empty()
            && tenant.len() <= MAX_TENANT_LEN
            && tenant.bytes().all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
    }

    /// The waiting-room gate for `tenant`, created on first use. The
    /// gate's counter is the dedicated `ticket:{tenant}` stream.
    pub fn gate(&self, tenant: &str) -> Arc<TicketGate> {
        let key = format!("ticket:{tenant}");
        if let Some(gate) = self.gates.read().get(&key) {
            return Arc::clone(gate);
        }
        let mut gates = self.gates.write();
        // Double-checked: another worker may have raced us here.
        if let Some(gate) = gates.get(&key) {
            return Arc::clone(gate);
        }
        let counter = self.service.get_or_create(&key);
        let gate = Arc::new(TicketGate::new(counter));
        gates.insert(key, Arc::clone(&gate));
        gate
    }

    /// The rate limiter for `tenant`, created on first use against the
    /// dedicated `rate:{tenant}` stream with the server-wide budget.
    pub fn limiter(&self, tenant: &str) -> Arc<RateLimiter> {
        let key = format!("rate:{tenant}");
        if let Some(limiter) = self.limiters.read().get(&key) {
            return Arc::clone(limiter);
        }
        let mut limiters = self.limiters.write();
        if let Some(limiter) = limiters.get(&key) {
            return Arc::clone(limiter);
        }
        let counter = self.service.get_or_create(&key);
        let limiter = Arc::new(RateLimiter::new(counter, self.rate_limit));
        limiters.insert(key, Arc::clone(&limiter));
        limiter
    }

    /// Reserves `k` contiguous ids from `tenant`'s `lease:` stream and
    /// returns the block base.
    pub fn lease(&self, tenant: &str, thread_id: usize, k: usize) -> u64 {
        use counting_runtime::BlockReserve;
        self.service.get_or_create(&format!("lease:{tenant}")).reserve_block(thread_id, k)
    }

    /// The lease stream's high-water mark (total ids ever leased when
    /// quiescent).
    #[must_use]
    pub fn lease_watermark(&self, tenant: &str) -> u64 {
        self.service.watermark(&format!("lease:{tenant}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_families_use_disjoint_streams() {
        let state = AppState::new(&ServerConfig::default());
        let gate = state.gate("q");
        let t0 = gate.acquire(0);
        let start = state.lease("q", 0, 4);
        // Both streams start at zero because they are different tenants.
        assert_eq!(t0, 0);
        assert_eq!(start, 0);
        assert_eq!(state.lease_watermark("q"), 4);
        let names = state.service().tenants();
        assert!(names.contains(&"ticket:q".to_owned()), "{names:?}");
        assert!(names.contains(&"lease:q".to_owned()), "{names:?}");
    }

    #[test]
    fn adapters_are_cached_per_tenant() {
        let state = AppState::new(&ServerConfig::default());
        let a = state.gate("q");
        let b = state.gate("q");
        assert!(Arc::ptr_eq(&a, &b), "same gate instance on repeat lookup");
        let l1 = state.limiter("q");
        let l2 = state.limiter("q");
        assert!(Arc::ptr_eq(&l1, &l2), "same limiter instance on repeat lookup");
    }

    #[test]
    fn tenant_validation_rejects_the_weird() {
        assert!(AppState::valid_tenant("queue-1.prod_x"));
        assert!(!AppState::valid_tenant(""));
        assert!(!AppState::valid_tenant("a/b"));
        assert!(!AppState::valid_tenant("a b"));
        assert!(!AppState::valid_tenant(&"x".repeat(MAX_TENANT_LEN + 1)));
    }
}
