//! A deliberately small HTTP/1.1 subset: enough to parse the request
//! line, the handful of headers the server cares about (`Connection`,
//! `Content-Length`), and to emit JSON responses with explicit
//! `Content-Length` framing.
//!
//! The subset is not a general web server. It exists so the admission
//! endpoints can be exercised over real sockets without pulling an async
//! runtime or an HTTP dependency into the vendored build (see the crate
//! docs for why). Requests with bodies have the body read and discarded;
//! chunked transfer encoding is rejected up front.

use std::io::{self, BufRead, Write};

/// Hard cap on a single request head (request line + headers). A client
/// that streams more than this without finishing its headers is cut off
/// rather than allowed to grow server memory.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Hard cap on a request body the server is willing to drain.
pub const MAX_BODY_BYTES: u64 = 64 * 1024;

/// A parsed request: method, decoded path segments, and query
/// parameters. Only the pieces the router consumes are kept.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased by the client convention (`GET`,
    /// `POST`, ...). The router treats `GET` and `POST` alike.
    pub method: String,
    /// The path portion of the request target, split on `/` with empty
    /// segments dropped: `/ticket/alpha` parses to `["ticket", "alpha"]`.
    pub segments: Vec<String>,
    /// Query parameters in arrival order, undecoded (`k=8` → `("k", "8")`).
    pub query: Vec<(String, String)>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value for query parameter `name`, if present.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Parses query parameter `name` as a `u64`.
    ///
    /// Returns `Ok(None)` when absent and `Err` with a client-facing
    /// message when present but malformed — the router turns that into a
    /// 400 rather than guessing.
    pub fn query_u64(&self, name: &str) -> Result<Option<u64>, String> {
        match self.query_param(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<u64>()
                .map(Some)
                .map_err(|_| format!("query parameter `{name}` must be an unsigned integer")),
        }
    }
}

/// Outcome of reading one request off a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, well-formed request.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The read timed out before the first byte of a new request — the
    /// connection is idle, not broken. The server uses this to poll its
    /// shutdown flag without abandoning the connection.
    Idle,
    /// The peer sent something unparseable; the caller should answer
    /// with a 400 (message included) and close.
    Malformed(String),
}

/// Reads one HTTP/1.1 request head (and drains its body, if any) from
/// `reader`.
///
/// Timeouts are only treated as [`ReadOutcome::Idle`] when they happen
/// before the first byte of the request line; a timeout mid-request means
/// the peer stalled and is reported as malformed. The server's clients
/// write each request as a single small packet, so this is the common
/// case, not a restriction that bites in practice.
pub fn read_request<R: BufRead>(reader: &mut R) -> io::Result<ReadOutcome> {
    let mut line = String::new();
    match read_head_line(reader, &mut line) {
        Ok(0) => return Ok(ReadOutcome::Closed),
        Ok(_) => {}
        Err(e) if is_timeout(&e) => return Ok(ReadOutcome::Idle),
        Err(e) => return Err(e),
    }
    let (method, target, version) = match parse_request_line(line.trim_end()) {
        Some((m, t, v)) => (m.to_owned(), t.to_owned(), v.to_owned()),
        None => return Ok(ReadOutcome::Malformed(format!("bad request line: {line:?}"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Ok(ReadOutcome::Malformed(format!("unsupported version {version}")));
    }

    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";
    let mut content_length: u64 = 0;
    let mut head_bytes = line.len();
    loop {
        line.clear();
        let n = match read_head_line(reader, &mut line) {
            Ok(0) => return Ok(ReadOutcome::Closed),
            Ok(n) => n,
            Err(e) if is_timeout(&e) => {
                return Ok(ReadOutcome::Malformed("timed out mid-headers".to_owned()))
            }
            Err(e) => return Err(e),
        };
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Ok(ReadOutcome::Malformed("request head too large".to_owned()));
        }
        let trimmed = line.trim_end();
        if trimmed.is_empty() {
            break;
        }
        let Some((name, value)) = trimmed.split_once(':') else {
            return Ok(ReadOutcome::Malformed(format!("bad header line: {trimmed:?}")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("content-length") {
            content_length = match value.parse() {
                Ok(n) => n,
                Err(_) => {
                    return Ok(ReadOutcome::Malformed("bad Content-Length".to_owned()));
                }
            };
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Ok(ReadOutcome::Malformed("chunked bodies are not supported".to_owned()));
        }
    }

    if content_length > MAX_BODY_BYTES {
        return Ok(ReadOutcome::Malformed("request body too large".to_owned()));
    }
    drain_body(reader, content_length)?;

    let (path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let segments =
        path.split('/').filter(|s| !s.is_empty()).map(ToOwned::to_owned).collect::<Vec<_>>();
    let query = raw_query
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_owned(), v.to_owned()),
            None => (pair.to_owned(), String::new()),
        })
        .collect::<Vec<_>>();

    Ok(ReadOutcome::Request(Request { method, segments, query, keep_alive }))
}

/// Reads one CRLF-terminated head line, capped at [`MAX_HEAD_BYTES`].
/// Returns the number of bytes consumed (0 at clean EOF).
fn read_head_line<R: BufRead>(reader: &mut R, out: &mut String) -> io::Result<usize> {
    let mut buf = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF mid-line is only clean when nothing was read at all.
            if buf.is_empty() {
                return Ok(0);
            }
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof mid-line"));
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&chunk[..=pos]);
            reader.consume(pos + 1);
            break;
        }
        buf.extend_from_slice(chunk);
        let n = chunk.len();
        reader.consume(n);
        if buf.len() > MAX_HEAD_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "head line too long"));
        }
    }
    let text = String::from_utf8(buf)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-utf8 head line"))?;
    let n = text.len();
    out.push_str(&text);
    Ok(n)
}

fn parse_request_line(line: &str) -> Option<(&str, &str, &str)> {
    let mut parts = line.split_ascii_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if parts.next().is_some() {
        return None;
    }
    Some((method, target, version))
}

fn drain_body<R: BufRead>(reader: &mut R, mut remaining: u64) -> io::Result<()> {
    while remaining > 0 {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "eof mid-body"));
        }
        let take = chunk.len().min(usize::try_from(remaining).unwrap_or(usize::MAX));
        reader.consume(take);
        remaining -= take as u64;
    }
    Ok(())
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// A response ready to serialize: status code plus a JSON body.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code (200, 400, 404, ...).
    pub status: u16,
    /// JSON body, already serialized.
    pub body: String,
}

impl Response {
    /// A 200 response with the given JSON body.
    #[must_use]
    pub fn ok(body: String) -> Self {
        Self { status: 200, body }
    }

    /// An error response with a `{"error": ...}` body.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        // Serialize through serde_json so the message is escaped properly.
        let body =
            serde_json::to_string(&ErrorBody { error: message.to_owned() }).unwrap_or_default();
        Self { status, body }
    }
}

// Owned field: the vendored serde derive does not handle lifetime
// parameters.
#[derive(serde::Serialize)]
struct ErrorBody {
    error: String,
}

/// Writes `response` with explicit `Content-Length` framing and the
/// given keep-alive disposition, then flushes.
pub fn write_response<W: Write>(
    writer: &mut W,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{}",
        response.status,
        reason,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
        response.body,
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> ReadOutcome {
        let mut reader = BufReader::new(raw.as_bytes());
        read_request(&mut reader).expect("io on in-memory buffer")
    }

    #[test]
    fn parses_path_segments_and_query() {
        let out = parse("GET /lease/alpha?k=8&trace HTTP/1.1\r\nHost: x\r\n\r\n");
        let ReadOutcome::Request(req) = out else { panic!("expected request, got {out:?}") };
        assert_eq!(req.method, "GET");
        assert_eq!(req.segments, ["lease", "alpha"]);
        assert_eq!(req.query_param("k"), Some("8"));
        assert_eq!(req.query_param("trace"), Some(""));
        assert_eq!(req.query_u64("k"), Ok(Some(8)));
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_close_is_honored() {
        let out = parse("GET /status/a HTTP/1.1\r\nConnection: close\r\n\r\n");
        let ReadOutcome::Request(req) = out else { panic!("expected request, got {out:?}") };
        assert!(!req.keep_alive);
    }

    #[test]
    fn http_1_0_defaults_to_close() {
        let out = parse("GET /status/a HTTP/1.0\r\n\r\n");
        let ReadOutcome::Request(req) = out else { panic!("expected request, got {out:?}") };
        assert!(!req.keep_alive);
    }

    #[test]
    fn clean_eof_is_closed() {
        assert!(matches!(parse(""), ReadOutcome::Closed));
    }

    #[test]
    fn garbage_is_malformed_not_fatal() {
        assert!(matches!(parse("NOT-HTTP\r\n\r\n"), ReadOutcome::Malformed(_)));
        assert!(matches!(parse("GET /x HTTP/9.9\r\n\r\n"), ReadOutcome::Malformed(_)));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
    }

    #[test]
    fn bodies_are_drained_before_the_next_request() {
        let raw = "POST /admit/a?n=2 HTTP/1.1\r\nContent-Length: 4\r\n\r\nbodyGET /status/a HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(raw.as_bytes());
        let first = read_request(&mut reader).unwrap();
        let ReadOutcome::Request(first) = first else { panic!("first: {first:?}") };
        assert_eq!(first.segments, ["admit", "a"]);
        let second = read_request(&mut reader).unwrap();
        let ReadOutcome::Request(second) = second else { panic!("second: {second:?}") };
        assert_eq!(second.segments, ["status", "a"]);
    }

    #[test]
    fn bad_query_numbers_report_the_parameter_name() {
        let out = parse("GET /lease/a?k=minus HTTP/1.1\r\n\r\n");
        let ReadOutcome::Request(req) = out else { panic!("expected request, got {out:?}") };
        let err = req.query_u64("k").unwrap_err();
        assert!(err.contains('k'), "error should name the parameter: {err}");
    }

    #[test]
    fn oversized_heads_are_rejected() {
        let huge = format!("GET /x HTTP/1.1\r\nPad: {}\r\n\r\n", "y".repeat(MAX_HEAD_BYTES));
        assert!(matches!(parse(&huge), ReadOutcome::Malformed(_)));
    }

    #[test]
    fn responses_carry_content_length_framing() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::ok("{\"a\":1}".to_owned()), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 7\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("{\"a\":1}"), "{text}");
    }
}
