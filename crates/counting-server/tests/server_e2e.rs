//! End-to-end serving test: a real server on an ephemeral port, hammered
//! by concurrent client threads over keep-alive sockets, with the
//! paper's guarantees asserted on the values observed **in HTTP
//! responses** — uniqueness and exact range survive the transport, not
//! just the in-process counter.

use std::collections::HashSet;
use std::sync::atomic::Ordering;

use counting_server::client::ClientConnection;
use counting_server::router::{AdmitBody, LeaseBody, StatusBody, TicketBody};
use counting_server::server::CountingServer;
use counting_server::state::ServerConfig;

const CLIENT_THREADS: usize = 8;
const TICKETS_PER_THREAD: usize = 50;
const LEASES_PER_THREAD: usize = 25;

/// What one client thread observed: its tickets and its `(start, count)`
/// lease blocks.
type ClientObservations = (Vec<u64>, Vec<(u64, u64)>);

#[test]
fn concurrent_http_clients_see_unique_dense_values_and_a_clean_shutdown() {
    let config = ServerConfig { workers: CLIENT_THREADS, ..ServerConfig::default() };
    let server = CountingServer::start("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();

    // Phase 1: every thread interleaves ticket draws and lease
    // reservations over one keep-alive connection.
    let per_thread: Vec<ClientObservations> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..CLIENT_THREADS)
            .map(|tid| {
                scope.spawn(move || {
                    let mut conn = ClientConnection::new(addr);
                    let mut tickets = Vec::new();
                    let mut leases = Vec::new();
                    for i in 0..TICKETS_PER_THREAD.max(LEASES_PER_THREAD) {
                        if i < TICKETS_PER_THREAD {
                            let resp = conn.get("/ticket/queue").expect("ticket request");
                            assert_eq!(resp.status, 200, "{}", resp.body);
                            let body: TicketBody =
                                serde_json::from_str(&resp.body).expect("ticket body");
                            tickets.push(body.ticket);
                        }
                        if i < LEASES_PER_THREAD {
                            // Vary k so blocks have ragged sizes.
                            let k = 1 + ((tid + i) % 8) as u64;
                            let resp =
                                conn.get(&format!("/lease/ids?k={k}")).expect("lease request");
                            assert_eq!(resp.status, 200, "{}", resp.body);
                            let body: LeaseBody =
                                serde_json::from_str(&resp.body).expect("lease body");
                            assert_eq!(body.count, k, "the full block was granted");
                            leases.push((body.start, body.count));
                        }
                    }
                    (tickets, leases)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client thread panicked")).collect()
    });

    // Uniqueness + exact range over the HTTP-observed tickets: dense
    // 0..total with no duplicate ever serialized into a response.
    let tickets: Vec<u64> = per_thread.iter().flat_map(|(t, _)| t.iter().copied()).collect();
    let expected_tickets = CLIENT_THREADS * TICKETS_PER_THREAD;
    assert_eq!(tickets.len(), expected_tickets);
    let mut sorted = tickets;
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        (0..expected_tickets as u64).collect::<Vec<_>>(),
        "tickets observed over HTTP must be exactly 0..{expected_tickets}"
    );

    // Same for every id inside every lease block, across all threads.
    let mut lease_values = HashSet::new();
    let mut lease_total = 0u64;
    for (start, count) in per_thread.iter().flat_map(|(_, l)| l.iter()) {
        lease_total += count;
        for v in *start..start + count {
            assert!(lease_values.insert(v), "lease id {v} appeared in two blocks");
        }
    }
    assert_eq!(lease_values.len() as u64, lease_total);
    assert!(
        (0..lease_total).all(|v| lease_values.contains(&v)),
        "lease ids observed over HTTP must be exactly 0..{lease_total}"
    );

    // Phase 2: the waiting room drains in ticket order through /admit,
    // and /status agrees over the wire.
    let mut conn = ClientConnection::new(addr);
    let resp = conn.get("/status/queue").expect("status request");
    let status: StatusBody = serde_json::from_str(&resp.body).expect("status body");
    assert_eq!(status.dispensed, expected_tickets as u64);
    assert_eq!(status.waiting, expected_tickets as u64, "nothing admitted yet");

    let resp = conn.get(&format!("/admit/queue?n={}", expected_tickets * 2)).expect("admit");
    let admit: AdmitBody = serde_json::from_str(&resp.body).expect("admit body");
    assert_eq!(
        admit.now_serving, expected_tickets as u64,
        "over-release clamps to the tickets actually dispensed"
    );
    assert_eq!(admit.granted, expected_tickets as u64);

    let resp =
        conn.get(&format!("/status/queue?ticket={}", expected_tickets - 1)).expect("status poll");
    let status: StatusBody = serde_json::from_str(&resp.body).expect("status body");
    assert_eq!(status.admitted, Some(true), "the last ticket is admitted after the drain");
    assert_eq!(status.waiting, 0);

    // The server counted what we sent (the admission plane lost nothing).
    let stats = server.stats();
    assert_eq!(stats.ticket.load(Ordering::Relaxed), expected_tickets as u64);
    assert_eq!(stats.lease.load(Ordering::Relaxed), (CLIENT_THREADS * LEASES_PER_THREAD) as u64);
    assert_eq!(stats.client_errors.load(Ordering::Relaxed), 0);

    // Phase 3: clean shutdown — returns only after every worker joined,
    // and the port is actually released (no acceptor left behind).
    server.shutdown();
    assert!(
        std::net::TcpListener::bind(addr).is_ok(),
        "the port must be rebindable after shutdown"
    );
}

/// Shutdown with clients still connected: the server must not hang on
/// idle keep-alive connections, and in-flight requests either complete
/// or the connection closes — but every worker joins.
#[test]
fn shutdown_under_load_joins_every_worker() {
    let config = ServerConfig { workers: 4, ..ServerConfig::default() };
    let server = CountingServer::start("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();

    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let stop = &stop;
            scope.spawn(move || {
                let mut conn = ClientConnection::new(addr);
                while !stop.load(Ordering::Relaxed) {
                    // Errors are expected once shutdown lands mid-exchange.
                    if conn.get("/ticket/load").is_err() {
                        break;
                    }
                }
            });
        }
        // Let the hammering threads get going, then pull the plug.
        std::thread::sleep(std::time::Duration::from_millis(100));
        server.shutdown(); // joins acceptor + workers or the test hangs
        stop.store(true, Ordering::Relaxed);
    });
    assert!(std::net::TcpListener::bind(addr).is_ok(), "port released after shutdown");
}
