//! The paper's amortized-contention bounds, as evaluatable formulas.
//!
//! The contention of a balancing network is measured in *stalls* (Dwork,
//! Herlihy & Waarts): every time a token passes through a balancer it
//! causes one stall to each token currently waiting at that balancer.
//! Amortized contention is the worst-case total stall count per token as
//! the number of tokens goes to infinity. These functions evaluate the
//! bounds proved in Section 6 (and the known bounds for the baselines), so
//! that measured contention from `counting-sim` can be compared against
//! the theory in the benchmark harness.

/// `lg x` as an `f64`, with `lg 1 = 0`. Accepts any `x >= 1`.
fn lgf(x: usize) -> f64 {
    (x as f64).log2()
}

/// Theorem 6.7: the amortized contention of `C(w, t)` at concurrency `n`
/// is less than `4n·lgw/w + n·lg²w/t + w·lg³w/t + 4·lg²w + lgw`.
#[must_use]
pub fn cwt_contention_bound(n: usize, w: usize, t: usize) -> f64 {
    let lgw = lgf(w);
    let (n, w, t) = (n as f64, w as f64, t as f64);
    4.0 * n * lgw / w + n * lgw * lgw / t + w * lgw.powi(3) / t + 4.0 * lgw * lgw + lgw
}

/// Lemma 6.5: the amortized contention of the forward butterfly `D(w)` at
/// concurrency `n` is less than `4n·lgw/w + lg²w + lgw`.
#[must_use]
pub fn butterfly_contention_bound(n: usize, w: usize) -> f64 {
    let lgw = lgf(w);
    let (n, w) = (n as f64, w as f64);
    4.0 * n * lgw / w + lgw * lgw + lgw
}

/// Corollary 6.4: the amortized contention of a single layer of balancers
/// of maximum output width `q` and layer output width `w`, whose output is
/// `k`-smooth in every quiescent state, is at most `q·n/w + q·(k+1)`.
#[must_use]
pub fn layer_contention_bound(q: usize, n: usize, w: usize, k: u64) -> f64 {
    let (q, n, w, k) = (q as f64, n as f64, w as f64, k as f64);
    q * n / w + q * (k + 1.0)
}

/// The amortized contention of the bitonic counting network of width `w`:
/// `Θ(n·lg²w/w)` (Dwork, Herlihy & Waarts, Section 3.2). The constant is
/// taken as 1, since only the asymptotic shape is compared.
#[must_use]
pub fn bitonic_contention_estimate(n: usize, w: usize) -> f64 {
    let lgw = lgf(w);
    n as f64 * lgw * lgw / w as f64
}

/// The amortized contention of the periodic counting network of width `w`:
/// `O(n·lg³w/w)` (Dwork, Herlihy & Waarts, Section 3.4). Constant taken
/// as 1.
#[must_use]
pub fn periodic_contention_estimate(n: usize, w: usize) -> f64 {
    let lgw = lgf(w);
    n as f64 * lgw.powi(3) / w as f64
}

/// The amortized contention of the diffracting tree: `Θ(n)` — an adversary
/// can accumulate all tokens at the root balancer (Section 1.4.1).
#[must_use]
pub fn diffracting_tree_contention_estimate(n: usize) -> f64 {
    n as f64
}

/// The smoothness parameter of the prefix `C'(w, t)` from Lemma 6.6:
/// `s = ⌊w·lgw/t⌋ + 2`.
#[must_use]
pub fn prefix_smoothness_bound(w: usize, t: usize) -> u64 {
    let lgw = w.trailing_zeros() as usize;
    (w * lgw / t) as u64 + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_6_7_specialisations() {
        // Section 1.3.1: for t = w and n >= w lg w the bound is dominated
        // by the n·lg²w/w term; for t = w·lgw and n >= w·lgw it drops by a
        // lg w factor to ~ n·lgw/w.
        let w = 1024;
        let n = 4 * w * 10; // n >= w lg w = 10240
        let regular = cwt_contention_bound(n, w, w);
        let wide = cwt_contention_bound(n, w, w * 10);
        assert!(wide < regular, "wider output width must lower the bound");
        // The improvement approaches the lg w factor on the n-dependent part.
        let bitonic = bitonic_contention_estimate(n, w);
        assert!(wide < bitonic, "C(w, w·lgw) must beat the bitonic estimate at high concurrency");
    }

    #[test]
    fn bounds_are_monotone_in_n() {
        for &f in &[cwt_contention_bound(100, 16, 16), cwt_contention_bound(1000, 16, 16)] {
            assert!(f.is_finite() && f > 0.0);
        }
        assert!(cwt_contention_bound(1000, 16, 16) > cwt_contention_bound(100, 16, 16));
        assert!(butterfly_contention_bound(1000, 16) > butterfly_contention_bound(100, 16));
        assert!(bitonic_contention_estimate(1000, 16) > bitonic_contention_estimate(100, 16));
    }

    #[test]
    fn increasing_t_decreases_the_bound() {
        let (n, w) = (10_000, 64);
        let mut prev = f64::INFINITY;
        for p in [1usize, 2, 4, 8, 16] {
            let b = cwt_contention_bound(n, w, w * p);
            assert!(b <= prev);
            prev = b;
        }
    }

    #[test]
    fn layer_bound_matches_corollary() {
        // q = 2, n = 100, w = 10, k = 1: 2·100/10 + 2·2 = 24.
        assert!((layer_contention_bound(2, 100, 10, 1) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn prefix_smoothness_examples() {
        // Lemma 6.6: s = ⌊w lg w / t⌋ + 2.
        assert_eq!(prefix_smoothness_bound(8, 8), 5);
        assert_eq!(prefix_smoothness_bound(8, 24), 3);
        assert_eq!(prefix_smoothness_bound(16, 64), 3);
        assert_eq!(prefix_smoothness_bound(16, 16 * 4), 3);
    }

    #[test]
    fn diffracting_tree_is_linear_in_n() {
        assert_eq!(diffracting_tree_contention_estimate(42), 42.0);
    }
}
