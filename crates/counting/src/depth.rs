//! Closed-form depth formulas for the constructions and the baselines.
//!
//! These are the formulas proved in the paper (Theorem 4.1, Lemma 3.1,
//! Lemma 5.1) plus the standard depths of the bitonic and periodic counting
//! networks used for comparison. Structural tests assert that every built
//! topology matches its formula exactly.

use crate::params::lg;

/// Depth of the counting network `C(w, t)`:
/// `(lg²w + lgw)/2` (Theorem 4.1). Independent of `t`.
#[must_use]
pub fn counting_depth(w: usize) -> usize {
    let k = lg(w) as usize;
    (k * k + k) / 2
}

/// Depth of the difference merging network `M(t, δ)`: `lg δ` (Lemma 3.1).
/// Independent of `t`.
#[must_use]
pub fn merger_depth(delta: usize) -> usize {
    lg(delta) as usize
}

/// Depth of the forward/backward butterfly `D(w)` / `E(w)`: `lg w`
/// (Lemma 5.1).
#[must_use]
pub fn butterfly_depth(w: usize) -> usize {
    lg(w) as usize
}

/// Depth of the bitonic counting network of width `w`:
/// `lg w (lg w + 1) / 2` (Aspnes, Herlihy & Shavit). Identical to
/// [`counting_depth`] — the paper's network matches the bitonic depth at
/// every width while allowing a wider output.
#[must_use]
pub fn bitonic_depth(w: usize) -> usize {
    let k = lg(w) as usize;
    k * (k + 1) / 2
}

/// Depth of the periodic counting network of width `w`: `lg²w`
/// (`lg w` blocks of depth `lg w` each).
#[must_use]
pub fn periodic_depth(w: usize) -> usize {
    let k = lg(w) as usize;
    k * k
}

/// Depth of the diffracting tree with `w` output wires: `lg w`
/// (a binary tree of `(1,2)`-balancers).
#[must_use]
pub fn diffracting_tree_depth(w: usize) -> usize {
    lg(w) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_at_small_widths() {
        assert_eq!(counting_depth(2), 1);
        assert_eq!(counting_depth(4), 3);
        assert_eq!(counting_depth(8), 6);
        assert_eq!(counting_depth(16), 10);
        assert_eq!(counting_depth(1024), 55);

        assert_eq!(merger_depth(2), 1);
        assert_eq!(merger_depth(16), 4);

        assert_eq!(butterfly_depth(1), 0);
        assert_eq!(butterfly_depth(8), 3);

        assert_eq!(bitonic_depth(8), 6);
        assert_eq!(periodic_depth(8), 9);
        assert_eq!(diffracting_tree_depth(8), 3);
    }

    #[test]
    fn counting_depth_equals_bitonic_depth() {
        for k in 1..12 {
            let w = 1usize << k;
            assert_eq!(counting_depth(w), bitonic_depth(w));
        }
    }

    #[test]
    fn counting_depth_satisfies_recurrence() {
        // depth(C(w, t)) = 1 + depth(C(w/2, t/2)) + lg(w/2).
        for k in 2..16 {
            let w = 1usize << k;
            assert_eq!(counting_depth(w), 1 + counting_depth(w / 2) + (k - 1));
        }
    }
}
