//! The forward and backward butterfly networks `D(w)` and `E(w)`
//! (Section 5).
//!
//! Both are regular networks of width `w = 2^k` and depth `lg w` built from
//! ladder layers. The forward butterfly `D(w)` consists of two `D(w/2)`
//! networks followed by a ladder `L(w)`; the backward butterfly `E(w)`
//! puts the ladder first. The two are isomorphic (Lemma 5.3), and `D(w)`
//! is `lg w`-smoothing (Lemma 5.2). The backward butterfly describes the
//! first `lg w` layers of `C(w, t)` (up to the width of the final layer's
//! balancers), which is the key structural fact behind the contention
//! analysis of blocks `N_a`/`N_b`.

use balnet::{BuildError, Network, NetworkBuilder};

use crate::ladder::ladder_into;
use crate::params::is_power_of_two;
use crate::wiring::{feed_outputs, input_sources, Src};

/// Adds a forward butterfly over the given sources, returning the output
/// sources.
pub(crate) fn forward_butterfly_into(b: &mut NetworkBuilder, x: &[Src]) -> Vec<Src> {
    let w = x.len();
    if w == 1 {
        return x.to_vec();
    }
    let (top, bottom) = x.split_at(w / 2);
    let mut inner = forward_butterfly_into(b, top);
    inner.extend(forward_butterfly_into(b, bottom));
    ladder_into(b, &inner)
}

/// Adds a backward butterfly over the given sources, returning the output
/// sources.
pub(crate) fn backward_butterfly_into(b: &mut NetworkBuilder, x: &[Src]) -> Vec<Src> {
    let w = x.len();
    if w == 1 {
        return x.to_vec();
    }
    let lad = ladder_into(b, x);
    let (top, bottom) = lad.split_at(w / 2);
    let mut out = backward_butterfly_into(b, top);
    out.extend(backward_butterfly_into(b, bottom));
    out
}

/// Builds the forward butterfly `D(w)` for `w` a power of two (`w >= 1`).
///
/// # Errors
///
/// Returns [`BuildError::InvalidParameter`] if `w` is not a power of two.
pub fn forward_butterfly(w: usize) -> Result<Network, BuildError> {
    if !is_power_of_two(w) {
        return Err(BuildError::InvalidParameter(format!(
            "D(w) requires w to be a power of two, got {w}"
        )));
    }
    let mut b = NetworkBuilder::new(w, w);
    let srcs = input_sources(w);
    let out = forward_butterfly_into(&mut b, &srcs);
    feed_outputs(&mut b, &out);
    Ok(b.build_expect("forward butterfly"))
}

/// Builds the backward butterfly `E(w)` for `w` a power of two (`w >= 1`).
///
/// # Errors
///
/// Returns [`BuildError::InvalidParameter`] if `w` is not a power of two.
pub fn backward_butterfly(w: usize) -> Result<Network, BuildError> {
    if !is_power_of_two(w) {
        return Err(BuildError::InvalidParameter(format!(
            "E(w) requires w to be a power of two, got {w}"
        )));
    }
    let mut b = NetworkBuilder::new(w, w);
    let srcs = input_sources(w);
    let out = backward_butterfly_into(&mut b, &srcs);
    feed_outputs(&mut b, &out);
    Ok(b.build_expect("backward butterfly"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depth::butterfly_depth;
    use balnet::properties::observed_smoothness;
    use balnet::{find_isomorphism, is_smoothing_network_randomized};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn butterfly_shape() {
        for w in [1usize, 2, 4, 8, 16, 32, 64] {
            let d = forward_butterfly(w).expect("valid");
            let e = backward_butterfly(w).expect("valid");
            for net in [&d, &e] {
                assert_eq!(net.depth(), butterfly_depth(w), "width {w}");
                assert_eq!(net.input_width(), w);
                assert_eq!(net.output_width(), w);
                assert!(net.is_regular());
                // lg w layers of w/2 balancers each.
                let lgw = if w == 1 { 0 } else { w.trailing_zeros() as usize };
                assert_eq!(net.num_balancers(), lgw * w / 2);
            }
        }
    }

    #[test]
    fn butterfly_rejects_non_powers_of_two() {
        assert!(forward_butterfly(6).is_err());
        assert!(backward_butterfly(12).is_err());
        assert!(forward_butterfly(0).is_err());
    }

    #[test]
    fn forward_butterfly_is_lgw_smoothing() {
        // Lemma 5.2.
        let mut rng = StdRng::seed_from_u64(5);
        for w in [2usize, 4, 8, 16, 32] {
            let d = forward_butterfly(w).expect("valid");
            let k = w.trailing_zeros() as u64;
            assert!(
                is_smoothing_network_randomized(&d, k, 200, 200, &mut rng),
                "D({w}) not {k}-smoothing"
            );
        }
    }

    #[test]
    fn backward_butterfly_is_lgw_smoothing() {
        // Follows from Lemma 5.3 + Lemma 2.8.
        let mut rng = StdRng::seed_from_u64(6);
        for w in [2usize, 4, 8, 16, 32] {
            let e = backward_butterfly(w).expect("valid");
            let k = w.trailing_zeros() as u64;
            assert!(
                is_smoothing_network_randomized(&e, k, 200, 200, &mut rng),
                "E({w}) not {k}-smoothing"
            );
        }
    }

    #[test]
    fn butterflies_are_isomorphic() {
        // Lemma 5.3, verified structurally by isomorphism search.
        for w in [2usize, 4, 8] {
            let d = forward_butterfly(w).expect("valid");
            let e = backward_butterfly(w).expect("valid");
            assert!(find_isomorphism(&d, &e).is_some(), "D({w}) and E({w}) should be isomorphic");
        }
    }

    #[test]
    fn butterfly_is_not_a_counting_network() {
        // The butterfly smooths but does not count: for w >= 4 there are
        // inputs whose output is not step.
        use balnet::properties::counting_counterexample_exhaustive;
        let d = forward_butterfly(4).expect("valid");
        assert!(counting_counterexample_exhaustive(&d, 3).is_some());
    }

    #[test]
    fn observed_smoothness_is_positive_for_large_widths() {
        // Sanity: the bound lg w is not vacuous — the butterfly really can
        // spread counts by more than 1 (so it is not a counting network),
        // yet never beyond lg w.
        let mut rng = StdRng::seed_from_u64(7);
        let w = 16usize;
        let d = forward_butterfly(w).expect("valid");
        let s = observed_smoothness(&d, 400, 100, &mut rng);
        assert!(s >= 1);
        assert!(s <= w.trailing_zeros() as u64);
    }
}
