//! The block decomposition `N_a`, `N_b`, `N_c` of the unfolded `C(w, t)`
//! (Section 1.3.2, Fig. 3).
//!
//! When the recursion of `C(w, t)` is unfolded, its layers fall into three
//! blocks:
//!
//! * `N_a` — layers `1 .. lg w - 1`: regular, width `w`, `(2,2)`-balancers;
//!   the ladders placed before the recursive counting networks.
//! * `N_b` — layer `lg w`: the transition layer of `w/2`
//!   `(2, 2p)`-balancers (the bases of the recursion, `C(2, 2p)`).
//! * `N_c` — layers `lg w + 1 .. depth`: regular, width `t`,
//!   `(2,2)`-balancers; all the merging networks.
//!
//! The contention analysis treats the blocks separately: `N_a,b` is
//! `s`-smoothing (Lemma 6.6) and isomorphic to a butterfly, while `N_c`
//! dominates the depth and its contention falls as `t` grows. The
//! simulator uses [`block_of_layer`] to attribute stalls to blocks.

use crate::depth::counting_depth;
use crate::params::lg;

/// The block a layer of `C(w, t)` belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// Block `N_a`: the ladder layers (depth `1 .. lg w - 1`).
    A,
    /// Block `N_b`: the single transition layer of `(2, 2p)`-balancers.
    B,
    /// Block `N_c`: the merging-network layers.
    C,
}

/// Maps a 1-based layer index of `C(w, t)` to its block.
///
/// # Panics
///
/// Panics if `w` is not a power of two `>= 2` or the layer index is out of
/// range (`1 ..= counting_depth(w)`).
#[must_use]
pub fn block_of_layer(w: usize, layer: usize) -> BlockKind {
    let lgw = lg(w) as usize;
    let depth = counting_depth(w);
    assert!(layer >= 1 && layer <= depth, "layer {layer} out of range 1..={depth} for C({w}, ·)");
    if layer < lgw {
        BlockKind::A
    } else if layer == lgw {
        BlockKind::B
    } else {
        BlockKind::C
    }
}

/// The number of layers in each block of `C(w, t)`:
/// `(|N_a|, |N_b|, |N_c|) = (lg w - 1, 1, (lg²w - lg w)/2)`.
#[must_use]
pub fn block_depths(w: usize) -> (usize, usize, usize) {
    let lgw = lg(w) as usize;
    (lgw - 1, 1, (lgw * lgw - lgw) / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::counting_network;
    use balnet::Network;

    #[test]
    fn block_depths_sum_to_total_depth() {
        for k in 1..10 {
            let w = 1usize << k;
            let (a, b, c) = block_depths(w);
            assert_eq!(a + b + c, counting_depth(w));
        }
    }

    #[test]
    fn layer_classification() {
        let w = 16; // lg w = 4, depth 10
        assert_eq!(block_of_layer(w, 1), BlockKind::A);
        assert_eq!(block_of_layer(w, 3), BlockKind::A);
        assert_eq!(block_of_layer(w, 4), BlockKind::B);
        assert_eq!(block_of_layer(w, 5), BlockKind::C);
        assert_eq!(block_of_layer(w, 10), BlockKind::C);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_layer() {
        let _ = block_of_layer(8, 7);
    }

    /// Checks that the actual built network has the block structure of
    /// Fig. 3: layers in N_a have width-w worth of (2,2)-balancers (w/2
    /// each), the N_b layer has w/2 irregular balancers, and every N_c
    /// layer has t/2 (2,2)-balancers.
    fn check_block_structure(net: &Network, w: usize, t: usize) {
        let p = t / w;
        let layers = net.layers();
        for (i, layer) in layers.iter().enumerate() {
            let layer_idx = i + 1;
            match block_of_layer(w, layer_idx) {
                BlockKind::A => {
                    assert_eq!(layer.len(), w / 2, "layer {layer_idx} of C({w},{t})");
                    for id in layer {
                        let node = net.balancer(*id);
                        assert_eq!((node.fan_in, node.fan_out), (2, 2));
                    }
                }
                BlockKind::B => {
                    assert_eq!(layer.len(), w / 2, "layer {layer_idx} of C({w},{t})");
                    for id in layer {
                        let node = net.balancer(*id);
                        assert_eq!((node.fan_in, node.fan_out), (2, 2 * p));
                    }
                }
                BlockKind::C => {
                    assert_eq!(layer.len(), t / 2, "layer {layer_idx} of C({w},{t})");
                    for id in layer {
                        let node = net.balancer(*id);
                        assert_eq!((node.fan_in, node.fan_out), (2, 2));
                    }
                }
            }
        }
    }

    #[test]
    fn fig3_structure_c816() {
        // Fig. 3 shows the decomposition of C(8, 16).
        let net = counting_network(8, 16).expect("valid");
        check_block_structure(&net, 8, 16);
    }

    #[test]
    fn block_structure_various_sizes() {
        for (w, t) in [(4, 4), (4, 8), (8, 8), (16, 16), (16, 64), (32, 32)] {
            let net = counting_network(w, t).expect("valid");
            check_block_structure(&net, w, t);
        }
    }
}
