//! Ablation constructions: what happens when the two key design choices of
//! `C(w, t)` are removed.
//!
//! Section 3.3 and Section 4 attribute the network's properties to two
//! decisions:
//!
//! 1. **Merging with `M(t, δ)`** whose depth is `lg δ` rather than the
//!    bitonic merger whose depth is `lg t`. [`counting_network_bitonic_merger`]
//!    builds the same recursive counting network but merges with a
//!    bitonic-style merger; it still counts, but its depth grows with the
//!    output width `t` (`Θ(lg² t)` when `t ≫ w`), destroying the paper's
//!    headline property that depth depends only on `w`.
//! 2. **The ladder `L(w)` in front of the recursive halves**, which bounds
//!    the difference of the halves' token counts by `w/2` — exactly the
//!    contract `M(t, w/2)` requires. [`counting_network_no_ladder`] omits
//!    the ladder; the result is *not* a counting network, and the unit
//!    tests of this module exhibit concrete counterexamples.
//!
//! These constructions exist for the ablation experiments (`exp_ablation`,
//! bench `merger_ablation`) and for tests; production users should use
//! [`crate::counting_network`].

use balnet::{BuildError, Network, NetworkBuilder};

use crate::ladder::ladder_into;
use crate::merger::merger_into;
use crate::params::validate_counting_params;
use crate::wiring::{evens, feed_balancer, feed_outputs, input_sources, odds, Src};

/// Adds a bitonic-style merger over two step sequences `x` and `y` of equal
/// length, returning the `2·|x|` output sources. Unlike `M(t, δ)`, its
/// depth is `lg(2·|x|)` — it does not exploit any bound on the difference
/// of the input sums.
fn bitonic_merger_into(b: &mut NetworkBuilder, x: &[Src], y: &[Src]) -> Vec<Src> {
    assert_eq!(x.len(), y.len());
    let k = x.len();
    if k == 1 {
        let bal = b.add_balancer(2, 2);
        feed_balancer(b, x[0], bal, 0);
        feed_balancer(b, y[0], bal, 1);
        return vec![Src::Bal(bal, 0), Src::Bal(bal, 1)];
    }
    let a = bitonic_merger_into(b, &evens(x), &odds(y));
    let c = bitonic_merger_into(b, &odds(x), &evens(y));
    let mut out = Vec::with_capacity(2 * k);
    for i in 0..k {
        let bal = b.add_balancer(2, 2);
        feed_balancer(b, a[i], bal, 0);
        feed_balancer(b, c[i], bal, 1);
        out.push(Src::Bal(bal, 0));
        out.push(Src::Bal(bal, 1));
    }
    out
}

fn counting_bitonic_into(b: &mut NetworkBuilder, x: &[Src], t: usize) -> Vec<Src> {
    let w = x.len();
    if w == 2 {
        let bal = b.add_balancer(2, t);
        feed_balancer(b, x[0], bal, 0);
        feed_balancer(b, x[1], bal, 1);
        return (0..t).map(|o| Src::Bal(bal, o)).collect();
    }
    let lad = ladder_into(b, x);
    let (e, f) = lad.split_at(w / 2);
    let g = counting_bitonic_into(b, e, t / 2);
    let h = counting_bitonic_into(b, f, t / 2);
    bitonic_merger_into(b, &g, &h)
}

fn counting_no_ladder_into(b: &mut NetworkBuilder, x: &[Src], t: usize) -> Vec<Src> {
    let w = x.len();
    if w == 2 {
        let bal = b.add_balancer(2, t);
        feed_balancer(b, x[0], bal, 0);
        feed_balancer(b, x[1], bal, 1);
        return (0..t).map(|o| Src::Bal(bal, o)).collect();
    }
    // Ablation: skip the ladder, split the raw input wires.
    let (e, f) = x.split_at(w / 2);
    let g = counting_no_ladder_into(b, e, t / 2);
    let h = counting_no_ladder_into(b, f, t / 2);
    merger_into(b, &g, &h, w / 2)
}

/// The ablation variant of `C(w, t)` that merges with a bitonic merger of
/// width `t` instead of `M(t, w/2)`. Still a counting network, but its
/// depth grows with `t` (see [`bitonic_variant_depth`]).
///
/// # Errors
///
/// Same parameter requirements as [`crate::counting_network`].
pub fn counting_network_bitonic_merger(w: usize, t: usize) -> Result<Network, BuildError> {
    validate_counting_params(w, t)?;
    let mut b = NetworkBuilder::new(w, t);
    let srcs = input_sources(w);
    let out = counting_bitonic_into(&mut b, &srcs, t);
    feed_outputs(&mut b, &out);
    Ok(b.build_expect("bitonic-merger ablation of C(w, t)"))
}

/// The ablation variant of `C(w, t)` without the ladder layer in front of
/// the recursive halves. **Not a counting network** — provided to
/// demonstrate that the ladder's `δ ≤ w/2` guarantee is essential for the
/// shallow merger to be correct.
///
/// # Errors
///
/// Same parameter requirements as [`crate::counting_network`].
pub fn counting_network_no_ladder(w: usize, t: usize) -> Result<Network, BuildError> {
    validate_counting_params(w, t)?;
    let mut b = NetworkBuilder::new(w, t);
    let srcs = input_sources(w);
    let out = counting_no_ladder_into(&mut b, &srcs, t);
    feed_outputs(&mut b, &out);
    Ok(b.build_expect("no-ladder ablation of C(w, t)"))
}

/// The depth of the bitonic-merger ablation, from the recurrence
/// `D(2, t) = 1`, `D(w, t) = 1 + D(w/2, t/2) + lg t`.
#[must_use]
pub fn bitonic_variant_depth(w: usize, t: usize) -> usize {
    if w == 2 {
        return 1;
    }
    1 + bitonic_variant_depth(w / 2, t / 2) + (t.trailing_zeros() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depth::counting_depth;
    use crate::network::counting_network;
    use balnet::properties::{
        counting_counterexample_exhaustive, counting_counterexample_randomized,
    };
    use balnet::{is_counting_network_randomized, output_is_step};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bitonic_variant_still_counts() {
        let mut rng = StdRng::seed_from_u64(61);
        for (w, t) in [(4usize, 4usize), (4, 8), (8, 8), (8, 16), (16, 16), (16, 64)] {
            let net = counting_network_bitonic_merger(w, t).expect("valid");
            assert!(
                is_counting_network_randomized(&net, 120, 64, &mut rng),
                "bitonic-merger variant of C({w},{t})"
            );
        }
    }

    #[test]
    fn bitonic_variant_depth_matches_recurrence_and_grows_with_t() {
        for (w, t) in [(4usize, 4usize), (4, 8), (8, 8), (8, 16), (8, 32), (16, 16), (16, 64)] {
            let net = counting_network_bitonic_merger(w, t).expect("valid");
            assert_eq!(net.depth(), bitonic_variant_depth(w, t), "depth of variant C({w},{t})");
        }
        // The bitonic merger is one layer deeper than M(t', w'/2) at every
        // recursion level, so the variant is strictly deeper for w >= 4 ...
        assert!(bitonic_variant_depth(8, 8) > counting_depth(8));
        // ... and, unlike C(w, t), its depth keeps growing with t.
        assert!(bitonic_variant_depth(8, 32) > bitonic_variant_depth(8, 8));
        assert!(bitonic_variant_depth(16, 256) > bitonic_variant_depth(16, 64));
        assert_eq!(counting_network(16, 256).expect("valid").depth(), counting_depth(16));
    }

    #[test]
    fn no_ladder_variant_is_not_a_counting_network() {
        // Without the ladder the two recursive halves can differ by far
        // more than w/2, violating the merger's contract; an exhaustive
        // search over small inputs finds violating inputs, and the real
        // construction (with the ladder) passes the same search.
        let w = 8usize;
        let without = counting_network_no_ladder(w, w).expect("builds fine, counts wrong");
        let cex = counting_counterexample_exhaustive(&without, 2);
        assert!(cex.is_some(), "without the ladder some input must break the step property");
        let with_ladder = counting_network(w, w).expect("valid");
        assert!(output_is_step(&with_ladder, &cex.expect("just checked")));
        // A randomized search over a larger instance finds counterexamples
        // quickly too.
        let mut rng = StdRng::seed_from_u64(62);
        let wide = counting_network_no_ladder(16, 16).expect("builds");
        assert!(counting_counterexample_randomized(&wide, 500, 16, &mut rng).is_some());
    }

    #[test]
    fn no_ladder_variant_is_shallower_but_wrong() {
        let (w, t) = (8usize, 16usize);
        let with_ladder = counting_network(w, t).expect("valid");
        let without = counting_network_no_ladder(w, t).expect("valid");
        assert_eq!(without.depth() + (w.trailing_zeros() as usize - 1), with_ladder.depth());
    }
}
