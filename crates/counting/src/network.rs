//! The counting network `C(w, t)` (Section 4) and its prefix `C'(w, t)`.
//!
//! `C(w, t)` is built recursively: a ladder `L(w)`, two copies of
//! `C(w/2, t/2)`, and a difference merging network `M(t, w/2)` (Fig. 10).
//! The recursion bottoms out at `C(2, 2p)`, a single `(2, 2p)`-balancer.
//! The ladder bounds the difference of token counts entering the two
//! recursive halves by `w/2`, which is exactly what `M(t, w/2)` needs
//! (Theorem 4.2), and keeps the merger depth at `lg(w/2)` independent of
//! `t` (Theorem 4.1).
//!
//! `C'(w, t)` ("counting prefix", Section 6.4 / Fig. 16 left) is `C(w, t)`
//! with every merging sub-network removed: the first `lg w` layers of the
//! unfolded construction, i.e. blocks `N_a` and `N_b`. It is an
//! `s`-smoothing network for `s = ⌊w·lgw/t⌋ + 2` (Lemma 6.6) and is
//! isomorphic — after widening its last layer back to `(2,2)`-balancers —
//! to the backward butterfly `E(w)`.

use balnet::{BuildError, Network, NetworkBuilder};

use crate::ladder::ladder_into;
use crate::merger::merger_into;
use crate::params::validate_counting_params;
use crate::wiring::{feed_balancer, feed_outputs, input_sources, Src};

/// Adds the recursive counting network over the `w` given sources with
/// output width `t`, returning the `t` output sources.
pub(crate) fn counting_into(b: &mut NetworkBuilder, x: &[Src], t: usize) -> Vec<Src> {
    let w = x.len();
    debug_assert!(w >= 2 && w.is_power_of_two() && t.is_multiple_of(w));
    if w == 2 {
        // Recursive basis: C(2, t) is a single (2, t)-balancer.
        let bal = b.add_balancer(2, t);
        feed_balancer(b, x[0], bal, 0);
        feed_balancer(b, x[1], bal, 1);
        return (0..t).map(|o| Src::Bal(bal, o)).collect();
    }
    // Sub-step 1: ladder, then the two recursive halves.
    let lad = ladder_into(b, x);
    let (e, f) = lad.split_at(w / 2);
    let g = counting_into(b, e, t / 2);
    let h = counting_into(b, f, t / 2);
    // Sub-step 2: merge with M(t, w/2).
    merger_into(b, &g, &h, w / 2)
}

/// Adds the prefix network `C'(w, t)` (the construction without any
/// merging sub-networks) over the given sources, returning the `t` output
/// sources.
pub(crate) fn counting_prefix_into(b: &mut NetworkBuilder, x: &[Src], t: usize) -> Vec<Src> {
    let w = x.len();
    debug_assert!(w >= 2 && w.is_power_of_two() && t.is_multiple_of(w));
    if w == 2 {
        let bal = b.add_balancer(2, t);
        feed_balancer(b, x[0], bal, 0);
        feed_balancer(b, x[1], bal, 1);
        return (0..t).map(|o| Src::Bal(bal, o)).collect();
    }
    let lad = ladder_into(b, x);
    let (e, f) = lad.split_at(w / 2);
    let g = counting_prefix_into(b, e, t / 2);
    let h = counting_prefix_into(b, f, t / 2);
    let mut out = g;
    out.extend(h);
    out
}

/// Builds the counting network `C(w, t)` with input width `w = 2^k` and
/// output width `t = p·w`.
///
/// # Errors
///
/// Returns [`BuildError::InvalidParameter`] if `w` is not a power of two
/// `>= 2` or `t` is not a positive multiple of `w`.
pub fn counting_network(w: usize, t: usize) -> Result<Network, BuildError> {
    validate_counting_params(w, t)?;
    let mut b = NetworkBuilder::new(w, t);
    let srcs = input_sources(w);
    let out = counting_into(&mut b, &srcs, t);
    feed_outputs(&mut b, &out);
    Ok(b.build_expect("counting network C(w, t)"))
}

/// Builds the prefix network `C'(w, t)`: the first `lg w` layers of
/// `C(w, t)`, i.e. the unfolded blocks `N_a` and `N_b` without any merging
/// sub-networks (Fig. 16, left). `C'(w, t)` is `s`-smoothing for
/// `s = ⌊w·lgw/t⌋ + 2` (Lemma 6.6).
///
/// # Errors
///
/// Returns [`BuildError::InvalidParameter`] on invalid parameters (same
/// requirements as [`counting_network`]).
pub fn counting_prefix(w: usize, t: usize) -> Result<Network, BuildError> {
    validate_counting_params(w, t)?;
    let mut b = NetworkBuilder::new(w, t);
    let srcs = input_sources(w);
    let out = counting_prefix_into(&mut b, &srcs, t);
    feed_outputs(&mut b, &out);
    Ok(b.build_expect("counting-network prefix C'(w, t)"))
}

/// The number of balancers in `C(w, t)` computed from the recurrence
/// `B(2, t) = 1`, `B(w, t) = w/2 + 2·B(w/2, t/2) + (t/2)·lg(w/2)`.
#[must_use]
pub fn counting_balancer_count(w: usize, t: usize) -> usize {
    if w == 2 {
        return 1;
    }
    let merger = (t / 2) * ((w / 2).trailing_zeros() as usize);
    w / 2 + 2 * counting_balancer_count(w / 2, t / 2) + merger
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depth::counting_depth;
    use balnet::{
        assign_counter_values, is_counting_network_exhaustive, is_counting_network_randomized,
        quiescent_output, TokenExecutor,
    };
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn c2_t_is_a_single_balancer() {
        for p in 1..5 {
            let t = 2 * p;
            let net = counting_network(2, t).expect("valid");
            assert_eq!(net.num_balancers(), 1);
            assert_eq!(net.depth(), 1);
            assert_eq!(net.balancer_census(), vec![((2, t), 1)]);
        }
    }

    #[test]
    fn depth_matches_theorem_4_1() {
        for (w, t) in
            [(2, 2), (4, 4), (4, 8), (8, 8), (8, 16), (8, 24), (16, 16), (16, 64), (32, 32)]
        {
            let net = counting_network(w, t).expect("valid");
            assert_eq!(
                net.depth(),
                counting_depth(w),
                "depth of C({w},{t}) should be (lg²w + lgw)/2 and independent of t"
            );
        }
    }

    #[test]
    fn balancer_count_matches_recurrence() {
        for (w, t) in [(4, 4), (4, 8), (8, 8), (8, 16), (16, 16), (16, 32), (32, 32)] {
            let net = counting_network(w, t).expect("valid");
            assert_eq!(net.num_balancers(), counting_balancer_count(w, t), "C({w},{t})");
        }
    }

    #[test]
    fn census_uses_only_22_and_22p_balancers() {
        // Section 1.3.1: C(w, t) is built from (2,2)- and (2,2p)-balancers,
        // and there are exactly w/2 of the latter (block N_b).
        let (w, t) = (8, 24);
        let p = t / w;
        let net = counting_network(w, t).expect("valid");
        let census = net.balancer_census();
        assert_eq!(census.len(), 2);
        assert_eq!(census[1], ((2, 2 * p), w / 2));
        assert_eq!(census[0].0, (2, 2));
    }

    #[test]
    fn regular_when_w_equals_t() {
        let net = counting_network(8, 8).expect("valid");
        assert!(net.is_regular());
        assert_eq!(net.balancer_census(), vec![((2, 2), net.num_balancers())]);
    }

    #[test]
    fn small_networks_count_exhaustively() {
        // Theorem 4.2 on exhaustively enumerated inputs.
        for (w, t, bound) in [(2, 2, 8), (2, 6, 8), (4, 4, 4), (4, 8, 4)] {
            let net = counting_network(w, t).expect("valid");
            assert!(
                is_counting_network_exhaustive(&net, bound),
                "C({w},{t}) failed an exhaustive counting check"
            );
        }
    }

    #[test]
    fn larger_networks_count_randomized() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for (w, t) in [(8, 8), (8, 16), (8, 24), (16, 16), (16, 32), (16, 64), (32, 32), (32, 160)]
        {
            let net = counting_network(w, t).expect("valid");
            assert!(
                is_counting_network_randomized(&net, 120, 64, &mut rng),
                "C({w},{t}) failed a randomized counting check"
            );
        }
    }

    #[test]
    fn fig1_right_network_c48() {
        // Fig. 1 (right): C(4, 8) — input width 4, output width 8,
        // depth (lg²4 + lg4)/2 = 3.
        let net = counting_network(4, 8).expect("valid");
        assert_eq!(net.input_width(), 4);
        assert_eq!(net.output_width(), 8);
        assert_eq!(net.depth(), 3);
        // 13 tokens (as in the figure: 4+2+3+4) spread as a step sequence:
        // 2 on the first five output wires, 1 on the remaining three.
        let out = quiescent_output(&net, &[4, 2, 3, 4]);
        assert_eq!(out, vec![2, 2, 2, 2, 2, 1, 1, 1]);
        // The counter values 0..12 are handed out exactly once.
        let mut values: Vec<u64> = assign_counter_values(&out).into_iter().flatten().collect();
        values.sort_unstable();
        assert_eq!(values, (0..13).collect::<Vec<_>>());
    }

    #[test]
    fn token_executor_matches_closed_form_on_c816() {
        let net = counting_network(8, 16).expect("valid");
        let input = [7u64, 0, 3, 12, 5, 1, 0, 2];
        let mut exec = TokenExecutor::new(&net);
        exec.inject_sequence(&input);
        assert_eq!(exec.output_counts(), quiescent_output(&net, &input));
    }

    #[test]
    fn prefix_structure() {
        // C'(w, t) has depth lg w; its last layer is the w/2 irregular
        // balancers of block N_b, all earlier layers are (2,2).
        for (w, t) in [(4, 8), (8, 8), (8, 16), (16, 64)] {
            let p = t / w;
            let net = counting_prefix(w, t).expect("valid");
            assert_eq!(net.depth(), w.trailing_zeros() as usize);
            assert_eq!(net.input_width(), w);
            assert_eq!(net.output_width(), t);
            let census = net.balancer_census();
            if p == 1 {
                assert_eq!(census, vec![((2, 2), net.num_balancers())]);
            } else {
                assert!(census.contains(&((2, 2 * p), w / 2)));
            }
        }
    }

    #[test]
    fn prefix_is_smoothing_with_lemma_6_6_bound() {
        use balnet::properties::observed_smoothness;
        let mut rng = StdRng::seed_from_u64(99);
        for (w, t) in [(4, 4), (8, 8), (8, 16), (16, 16), (16, 64)] {
            let net = counting_prefix(w, t).expect("valid");
            let lgw = w.trailing_zeros() as usize;
            let s = (w * lgw / t) as u64 + 2;
            let observed = observed_smoothness(&net, 150, 100, &mut rng);
            assert!(
                observed <= s,
                "C'({w},{t}) observed smoothness {observed} exceeds Lemma 6.6 bound {s}"
            );
        }
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(counting_network(3, 3).is_err());
        assert!(counting_network(4, 6).is_err());
        assert!(counting_network(0, 4).is_err());
        assert!(counting_network(1, 1).is_err());
        assert!(counting_prefix(6, 6).is_err());
    }
}
