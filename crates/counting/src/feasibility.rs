//! Feasibility of counting-network widths (Aharonson & Attiya).
//!
//! Section 1.4.2 recalls the impossibility result of Aharonson and Attiya:
//! a counting network (indeed, any smoothing network) of output width `w`
//! cannot be built from balancers whose output widths are `b_1, ..., b_k`
//! if some prime factor of `w` divides none of the `b_i`. This module
//! implements that test, so users asking "can I build a counter with 12
//! outputs from (2,2)- and (2,3)-balancers?" get an immediate, principled
//! answer — and so the parameter validation of `C(w, t)` can be
//! cross-checked against the general theory.

use balnet::Network;

/// Why a requested output width cannot be realised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfeasibleWidth {
    /// The requested output width.
    pub output_width: usize,
    /// A prime factor of the output width that divides none of the
    /// available balancer output widths.
    pub blocking_prime: usize,
}

impl std::fmt::Display for InfeasibleWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no counting network of output width {} exists: its prime factor {} divides none of the available balancer output widths",
            self.output_width, self.blocking_prime
        )
    }
}

impl std::error::Error for InfeasibleWidth {}

/// The distinct prime factors of `n` (empty for `n <= 1`).
#[must_use]
pub fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut factors = Vec::new();
    let mut p = 2usize;
    while p * p <= n {
        if n.is_multiple_of(p) {
            factors.push(p);
            while n.is_multiple_of(p) {
                n /= p;
            }
        }
        p += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors
}

/// Checks the Aharonson–Attiya necessary condition: every prime factor of
/// `output_width` must divide at least one of the available balancer
/// output widths.
///
/// A passing check does **not** by itself guarantee a construction exists
/// (the theorem is an impossibility result), but a failing check is a
/// proof that none does.
///
/// # Errors
///
/// Returns [`InfeasibleWidth`] naming the blocking prime.
pub fn counting_width_feasible(
    output_width: usize,
    balancer_output_widths: &[usize],
) -> Result<(), InfeasibleWidth> {
    for prime in prime_factors(output_width) {
        if !balancer_output_widths.iter().any(|&b| b % prime == 0) {
            return Err(InfeasibleWidth { output_width, blocking_prime: prime });
        }
    }
    Ok(())
}

/// All output widths in `1..=limit` that pass the feasibility test for the
/// given balancer set.
#[must_use]
pub fn feasible_output_widths(balancer_output_widths: &[usize], limit: usize) -> Vec<usize> {
    (1..=limit).filter(|&w| counting_width_feasible(w, balancer_output_widths).is_ok()).collect()
}

/// Cross-check helper: the set of distinct balancer output widths actually
/// used by a built network, suitable for feeding back into
/// [`counting_width_feasible`].
#[must_use]
pub fn balancer_output_widths(network: &Network) -> Vec<usize> {
    let mut widths: Vec<usize> = network.balancers().iter().map(|b| b.fan_out).collect();
    widths.sort_unstable();
    widths.dedup();
    widths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::counting_network;

    #[test]
    fn prime_factorisation() {
        assert_eq!(prime_factors(1), Vec::<usize>::new());
        assert_eq!(prime_factors(2), vec![2]);
        assert_eq!(prime_factors(12), vec![2, 3]);
        assert_eq!(prime_factors(360), vec![2, 3, 5]);
        assert_eq!(prime_factors(97), vec![97]);
    }

    #[test]
    fn powers_of_two_are_feasible_with_binary_balancers() {
        for k in 1..12 {
            assert!(counting_width_feasible(1 << k, &[2]).is_ok());
        }
    }

    #[test]
    fn odd_prime_widths_are_infeasible_with_binary_balancers() {
        let err = counting_width_feasible(6, &[2]).unwrap_err();
        assert_eq!(err.blocking_prime, 3);
        assert!(err.to_string().contains("prime factor 3"));
        assert_eq!(counting_width_feasible(10, &[2, 4]).unwrap_err().blocking_prime, 5);
        assert!(counting_width_feasible(12, &[2, 3]).is_ok());
    }

    #[test]
    fn feasible_width_enumeration() {
        assert_eq!(feasible_output_widths(&[2], 10), vec![1, 2, 4, 8]);
        assert_eq!(feasible_output_widths(&[2, 3], 12), vec![1, 2, 3, 4, 6, 8, 9, 12]);
        assert_eq!(feasible_output_widths(&[6], 12), vec![1, 2, 3, 4, 6, 8, 9, 12]);
    }

    #[test]
    fn built_networks_satisfy_the_necessary_condition() {
        // Consistency: every C(w, t) we can build uses balancer widths that
        // pass the Aharonson–Attiya test for its own output width.
        for (w, t) in [(4usize, 4usize), (4, 8), (8, 24), (16, 80)] {
            let net = counting_network(w, t).expect("valid");
            let widths = balancer_output_widths(&net);
            assert!(
                counting_width_feasible(t, &widths).is_ok(),
                "C({w},{t}) with balancer widths {widths:?}"
            );
        }
    }

    #[test]
    fn the_theorem_explains_why_c_w_t_needs_t_a_multiple_of_w_times_primes() {
        // A (2, 2p)-balancer set {2, 2p} cannot realise an output width
        // containing a prime absent from 2p: e.g. width 2·3 = 6 needs a
        // balancer width divisible by 3.
        assert!(counting_width_feasible(6, &[2, 4]).is_err());
        assert!(counting_width_feasible(6, &[2, 6]).is_ok());
    }
}
