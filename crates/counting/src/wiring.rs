//! Internal wiring helpers shared by the recursive constructions.
//!
//! Recursive constructions are expressed in terms of *wire sources*: a
//! sub-network is handed the sources feeding its input wires and returns the
//! sources of its output wires, all inside a single [`NetworkBuilder`]. The
//! top-level construction then routes the final sources to the network's
//! output wires.

use balnet::{BalancerId, NetworkBuilder};

/// Where a wire comes from: a network input wire or an output port of a
/// balancer already added to the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Src {
    /// Network input wire with the given index.
    Input(usize),
    /// Output port `1` of balancer `0`.
    Bal(BalancerId, usize),
}

/// Connects a wire source to an input port of a balancer.
pub(crate) fn feed_balancer(b: &mut NetworkBuilder, src: Src, to: BalancerId, port: usize) {
    match src {
        Src::Input(i) => b.connect_input(i, to, port),
        Src::Bal(from, from_port) => b.connect(from, from_port, to, port),
    }
}

/// Connects a wire source to a network output wire.
pub(crate) fn feed_output(b: &mut NetworkBuilder, src: Src, output: usize) {
    match src {
        Src::Input(i) => b.connect_input_to_output(i, output),
        Src::Bal(from, from_port) => b.connect_to_output(from, from_port, output),
    }
}

/// Routes a whole sequence of sources to the network output wires
/// `0..srcs.len()` in order.
pub(crate) fn feed_outputs(b: &mut NetworkBuilder, srcs: &[Src]) {
    for (i, &s) in srcs.iter().enumerate() {
        feed_output(b, s, i);
    }
}

/// The sources at network input wires `0..w`.
pub(crate) fn input_sources(w: usize) -> Vec<Src> {
    (0..w).map(Src::Input).collect()
}

/// Even-indexed elements of a source slice.
pub(crate) fn evens(srcs: &[Src]) -> Vec<Src> {
    srcs.iter().step_by(2).copied().collect()
}

/// Odd-indexed elements of a source slice.
pub(crate) fn odds(srcs: &[Src]) -> Vec<Src> {
    srcs.iter().skip(1).step_by(2).copied().collect()
}
