//! # counting — the efficient counting network `C(w, t)`
//!
//! This crate implements the primary contribution of Busch & Mavronicolas,
//! *"An Efficient Counting Network"* (IPPS/SPDP'98; full version in
//! Theoretical Computer Science 411 (2010) 3001–3030):
//!
//! * the **ladder network** `L(w)` (Section 4.1),
//! * the **difference merging network** `M(t, δ)` (Section 3) — a regular
//!   width-`t` network of depth `lg δ` that merges two step sequences whose
//!   sums differ by at most `δ`,
//! * the **counting network** `C(w, t)` (Section 4) with input width
//!   `w = 2^k`, output width `t = p·w`, and depth `(lg²w + lgw)/2`
//!   independent of `t`,
//! * the **forward and backward butterfly** networks `D(w)` / `E(w)`
//!   (Section 5), used in the contention analysis,
//! * the **block decomposition** `N_a`, `N_b`, `N_c` of the unfolded
//!   construction (Section 1.3.2),
//! * closed-form **depth formulas** and the paper's **contention bounds**
//!   (Theorem 6.7, Lemma 6.5, Corollary 6.4) for comparison against
//!   measured contention.
//!
//! All constructions produce [`balnet::Network`] topologies, so they can be
//! verified with `balnet`'s property checkers, simulated with
//! `counting-sim`, and executed concurrently with `counting-runtime`.

#![warn(missing_docs)]

pub mod ablation;
pub mod blocks;
pub mod bounds;
pub mod butterfly;
pub mod depth;
pub mod feasibility;
pub mod ladder;
pub mod merger;
pub mod network;
pub mod params;
mod wiring;

pub use ablation::{counting_network_bitonic_merger, counting_network_no_ladder};
pub use blocks::{block_of_layer, BlockKind};
pub use bounds::{
    bitonic_contention_estimate, butterfly_contention_bound, cwt_contention_bound,
    diffracting_tree_contention_estimate, layer_contention_bound, periodic_contention_estimate,
};
pub use butterfly::{backward_butterfly, forward_butterfly};
pub use depth::{bitonic_depth, butterfly_depth, counting_depth, merger_depth, periodic_depth};
pub use feasibility::{counting_width_feasible, feasible_output_widths, InfeasibleWidth};
pub use ladder::ladder;
pub use merger::merging_network;
pub use network::{counting_network, counting_prefix};
pub use params::{is_power_of_two, lg, validate_counting_params, validate_merger_params};
