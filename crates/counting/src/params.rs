//! Parameter validation for the paper's constructions.
//!
//! The counting network `C(w, t)` requires `w = 2^k` and `t = p·w` for
//! integers `k, p >= 1`; the merging network `M(t, δ)` requires
//! `t = p·2^i`, `δ = 2^j` with `p >= 1` and `1 <= j < i` (Sections 3 and 4).

use balnet::BuildError;

/// Returns `true` if `x` is a power of two (and nonzero).
#[must_use]
pub fn is_power_of_two(x: usize) -> bool {
    x != 0 && (x & (x - 1)) == 0
}

/// Base-2 logarithm of a power of two.
///
/// # Panics
///
/// Panics if `x` is not a power of two.
#[must_use]
pub fn lg(x: usize) -> u32 {
    assert!(is_power_of_two(x), "lg is only defined for powers of two, got {x}");
    x.trailing_zeros()
}

/// Validates the parameters of the counting network `C(w, t)`:
/// `w = 2^k` with `k >= 1` and `t = p·w` with `p >= 1`.
///
/// # Errors
///
/// Returns [`BuildError::InvalidParameter`] describing the violated
/// requirement.
pub fn validate_counting_params(w: usize, t: usize) -> Result<(), BuildError> {
    if w < 2 || !is_power_of_two(w) {
        return Err(BuildError::InvalidParameter(format!(
            "C(w, t) requires the input width w to be a power of two >= 2, got w = {w}"
        )));
    }
    if t == 0 || !t.is_multiple_of(w) {
        return Err(BuildError::InvalidParameter(format!(
            "C(w, t) requires the output width t to be a positive multiple of w, got w = {w}, t = {t}"
        )));
    }
    Ok(())
}

/// Validates the parameters of the merging network `M(t, δ)`: `δ = 2^j`
/// with `j >= 1`, and `t` a multiple of `2δ` (equivalently `t = p·2^i` with
/// `i > j`), which is exactly what the recursive construction needs.
///
/// # Errors
///
/// Returns [`BuildError::InvalidParameter`] describing the violated
/// requirement.
pub fn validate_merger_params(t: usize, delta: usize) -> Result<(), BuildError> {
    if delta < 2 || !is_power_of_two(delta) {
        return Err(BuildError::InvalidParameter(format!(
            "M(t, δ) requires the merging parameter δ to be a power of two >= 2, got δ = {delta}"
        )));
    }
    if t == 0 || !t.is_multiple_of(2 * delta) {
        return Err(BuildError::InvalidParameter(format!(
            "M(t, δ) requires t to be a positive multiple of 2δ, got t = {t}, δ = {delta}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_of_two_detection() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(2));
        assert!(is_power_of_two(1024));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(3));
        assert!(!is_power_of_two(6));
    }

    #[test]
    fn lg_of_powers() {
        assert_eq!(lg(1), 0);
        assert_eq!(lg(2), 1);
        assert_eq!(lg(8), 3);
        assert_eq!(lg(1 << 20), 20);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn lg_rejects_non_powers() {
        let _ = lg(12);
    }

    #[test]
    fn counting_params() {
        assert!(validate_counting_params(2, 2).is_ok());
        assert!(validate_counting_params(4, 8).is_ok());
        assert!(validate_counting_params(8, 8).is_ok());
        assert!(validate_counting_params(8, 24).is_ok());
        assert!(validate_counting_params(1, 1).is_err());
        assert!(validate_counting_params(6, 6).is_err());
        assert!(validate_counting_params(4, 6).is_err());
        assert!(validate_counting_params(4, 0).is_err());
    }

    #[test]
    fn merger_params() {
        assert!(validate_merger_params(4, 2).is_ok());
        assert!(validate_merger_params(8, 2).is_ok());
        assert!(validate_merger_params(8, 4).is_ok());
        assert!(validate_merger_params(16, 4).is_ok());
        assert!(validate_merger_params(24, 4).is_ok());
        assert!(validate_merger_params(8, 8).is_err(), "needs t >= 2δ");
        assert!(validate_merger_params(6, 2).is_err(), "t must be a multiple of 2δ");
        assert!(validate_merger_params(8, 3).is_err(), "δ must be a power of two");
        assert!(validate_merger_params(8, 1).is_err(), "δ >= 2");
    }
}
