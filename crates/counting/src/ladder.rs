//! The ladder network `L(w)` (Section 4.1).
//!
//! `L(w)` is a single layer of `w/2` `(2,2)`-balancers. Balancer `b_i`
//! (for `0 <= i < w/2`) takes input wires `i` and `i + w/2` and produces
//! output wires `i` (top) and `i + w/2` (bottom). The ladder is used in
//! front of the recursive halves of `C(w, t)` to bound the difference of
//! the token counts entering the two halves by `w/2`, and it is the layer
//! glue of the butterfly networks.

use balnet::{BuildError, Network, NetworkBuilder};

use crate::params::is_power_of_two;
use crate::wiring::{feed_balancer, feed_outputs, input_sources, Src};

/// Adds a ladder layer over the `w` given sources, returning the `w`
/// output sources (`out[i]` and `out[i + w/2]` are the two outputs of
/// balancer `i`).
pub(crate) fn ladder_into(b: &mut NetworkBuilder, srcs: &[Src]) -> Vec<Src> {
    let w = srcs.len();
    assert!(w >= 2 && w.is_multiple_of(2), "ladder width must be even and >= 2, got {w}");
    let half = w / 2;
    let mut out = vec![None; w];
    for i in 0..half {
        let bal = b.add_balancer(2, 2);
        feed_balancer(b, srcs[i], bal, 0);
        feed_balancer(b, srcs[i + half], bal, 1);
        out[i] = Some(Src::Bal(bal, 0));
        out[i + half] = Some(Src::Bal(bal, 1));
    }
    out.into_iter().map(|s| s.expect("all wires assigned")).collect()
}

/// Builds the ladder network `L(w)` as a standalone network.
///
/// # Errors
///
/// Returns [`BuildError::InvalidParameter`] unless `w` is an even number
/// `>= 2`. (The paper uses ladders only for powers of two, but the
/// construction itself works for any even width.)
pub fn ladder(w: usize) -> Result<Network, BuildError> {
    if w < 2 || !w.is_multiple_of(2) {
        return Err(BuildError::InvalidParameter(format!(
            "L(w) requires an even width >= 2, got w = {w}"
        )));
    }
    let mut b = NetworkBuilder::new(w, w);
    let srcs = input_sources(w);
    let out = ladder_into(&mut b, &srcs);
    feed_outputs(&mut b, &out);
    Ok(b.build_expect("ladder"))
}

/// Convenience: ladder of power-of-two width, panicking on bad input.
/// Used internally by tests and benches.
#[must_use]
pub fn ladder_pow2(w: usize) -> Network {
    assert!(is_power_of_two(w) && w >= 2);
    ladder(w).expect("power-of-two widths are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use balnet::{is_step, quiescent_output, BalancerId};

    #[test]
    fn ladder_shape() {
        for w in [2usize, 4, 8, 16, 64] {
            let net = ladder(w).expect("valid");
            assert_eq!(net.input_width(), w);
            assert_eq!(net.output_width(), w);
            assert_eq!(net.depth(), 1);
            assert_eq!(net.num_balancers(), w / 2);
            assert_eq!(net.balancer_census(), vec![((2, 2), w / 2)]);
        }
    }

    #[test]
    fn ladder_rejects_bad_widths() {
        assert!(ladder(0).is_err());
        assert!(ladder(1).is_err());
        assert!(ladder(3).is_err());
        assert!(ladder(6).is_ok(), "even non-power-of-two widths are structurally fine");
    }

    #[test]
    fn ladder_pairs_i_with_i_plus_half() {
        // For w = 8, balancer i must receive input wires i and i+4 and feed
        // output wires i and i+4.
        let net = ladder(8).expect("valid");
        for i in 0..4usize {
            let node = net.balancer(BalancerId(i));
            assert_eq!(node.outputs[0], balnet::Port::Output(i));
            assert_eq!(node.outputs[1], balnet::Port::Output(i + 4));
            assert_eq!(net.inputs()[i], balnet::Port::Balancer { balancer: i, port: 0 });
            assert_eq!(net.inputs()[i + 4], balnet::Port::Balancer { balancer: i, port: 1 });
        }
    }

    #[test]
    fn ladder_balances_each_pair() {
        // Each balancer splits its pair: outputs of pair (i, i+w/2) satisfy
        // the step property, hence the halves differ by at most w/2 in sum
        // (the key fact used in Theorem 4.2).
        let w = 8;
        let net = ladder(w).expect("valid");
        let input: Vec<u64> = vec![5, 0, 3, 7, 1, 1, 4, 9];
        let out = quiescent_output(&net, &input);
        for i in 0..w / 2 {
            let pair = [out[i], out[i + w / 2]];
            assert!(is_step(&pair), "pair {i} not balanced: {pair:?}");
            assert_eq!(pair[0] + pair[1], input[i] + input[i + w / 2]);
        }
        let first: u64 = out[..w / 2].iter().sum();
        let second: u64 = out[w / 2..].iter().sum();
        assert!(first >= second && first - second <= (w / 2) as u64);
    }
}
