//! The difference merging network `M(t, δ)` (Section 3).
//!
//! `M(t, δ)` is a regular balancing network of width `t` and depth `lg δ`.
//! Its defining property (Lemma 3.3): if its first and second input halves
//! `x^(t/2)` and `y^(t/2)` each satisfy the step property and
//! `0 <= Σx - Σy <= δ`, then its output sequence satisfies the step
//! property. Crucially the depth depends only on the *difference bound* δ,
//! not on the width `t` — this is what lets `C(w, t)` keep depth `Θ(lg²w)`
//! independent of `t` (Section 3.3 contrasts this with the bitonic merger,
//! whose depth is `lg t`).

use balnet::{BuildError, Network, NetworkBuilder};

use crate::params::validate_merger_params;
use crate::wiring::{evens, feed_balancer, feed_outputs, input_sources, odds, Src};

/// Adds the base-case network `M(t, 2)` — a single layer of `t/2`
/// `(2,2)`-balancers — over first-half sources `x` and second-half sources
/// `y`, returning the `t` output sources.
///
/// Balancer `b_0` receives `x_0` and `y_{t/2-1}` and feeds outputs `z_0`
/// and `z_{t-1}`; balancer `b_i` (for `1 <= i < t/2`) receives `y_{i-1}`
/// and `x_i` and feeds outputs `z_{2i-1}` and `z_{2i}`.
pub(crate) fn merger_base_into(b: &mut NetworkBuilder, x: &[Src], y: &[Src]) -> Vec<Src> {
    assert_eq!(x.len(), y.len(), "M(t, 2) needs equal-length halves");
    let half = x.len();
    let t = 2 * half;
    let mut out = vec![None; t];

    // b_0: first input x_0, second input y_{t/2-1}; outputs z_0, z_{t-1}.
    let b0 = b.add_balancer(2, 2);
    feed_balancer(b, x[0], b0, 0);
    feed_balancer(b, y[half - 1], b0, 1);
    out[0] = Some(Src::Bal(b0, 0));
    out[t - 1] = Some(Src::Bal(b0, 1));

    // b_i, 1 <= i < t/2: first input y_{i-1}, second input x_i;
    // outputs z_{2i-1}, z_{2i}.
    for i in 1..half {
        let bi = b.add_balancer(2, 2);
        feed_balancer(b, y[i - 1], bi, 0);
        feed_balancer(b, x[i], bi, 1);
        out[2 * i - 1] = Some(Src::Bal(bi, 0));
        out[2 * i] = Some(Src::Bal(bi, 1));
    }
    out.into_iter().map(|s| s.expect("all output wires assigned")).collect()
}

/// Adds the full recursive merging network `M(t, δ)` over first-half
/// sources `x` and second-half sources `y`, returning the `t` output
/// sources.
///
/// Recursive step (Section 3.1): `M_0(t/2, δ/2)` merges the even
/// subsequences of `x` and `y`, `M_1(t/2, δ/2)` merges the odd
/// subsequences, and a final `M(t, 2)` layer combines their outputs `g`
/// and `h`.
pub(crate) fn merger_into(b: &mut NetworkBuilder, x: &[Src], y: &[Src], delta: usize) -> Vec<Src> {
    assert_eq!(x.len(), y.len(), "M(t, δ) needs equal-length halves");
    assert!(delta >= 2 && delta.is_power_of_two(), "δ must be a power of two >= 2");
    if delta == 2 {
        return merger_base_into(b, x, y);
    }
    let g = merger_into(b, &evens(x), &evens(y), delta / 2);
    let h = merger_into(b, &odds(x), &odds(y), delta / 2);
    merger_base_into(b, &g, &h)
}

/// Builds the difference merging network `M(t, δ)` as a standalone
/// network of input and output width `t`. The first input sequence is the
/// first `t/2` input wires, the second input sequence the last `t/2`.
///
/// # Errors
///
/// Returns [`BuildError::InvalidParameter`] unless `δ` is a power of two
/// `>= 2` and `t` is a positive multiple of `2δ`.
pub fn merging_network(t: usize, delta: usize) -> Result<Network, BuildError> {
    validate_merger_params(t, delta)?;
    let mut b = NetworkBuilder::new(t, t);
    let srcs = input_sources(t);
    let (x, y) = srcs.split_at(t / 2);
    let out = merger_into(&mut b, x, y, delta);
    feed_outputs(&mut b, &out);
    Ok(b.build_expect("difference merging network"))
}

/// The number of balancers in `M(t, δ)`: `(t/2)·lg δ` (each recursion
/// level contributes one layer of `t/2` balancers).
#[must_use]
pub fn merger_balancer_count(t: usize, delta: usize) -> usize {
    (t / 2) * (delta.trailing_zeros() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use balnet::{is_step, quiescent_output, step_sequence};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Generates a pair of step input halves whose sums differ by at most
    /// `delta` and feeds them to the merger; the output must be step.
    fn check_merging_property(t: usize, delta: usize, trials: usize, seed: u64) {
        let net = merging_network(t, delta).expect("valid parameters");
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..trials {
            let sum_y: u64 = rng.gen_range(0..200);
            let diff: u64 = rng.gen_range(0..=delta as u64);
            let sum_x = sum_y + diff;
            let mut input = step_sequence(sum_x, t / 2);
            input.extend(step_sequence(sum_y, t / 2));
            let out = quiescent_output(&net, &input);
            assert!(is_step(&out), "M({t},{delta}) failed on Σx={sum_x} Σy={sum_y}: {out:?}");
            assert_eq!(out.iter().sum::<u64>(), sum_x + sum_y);
        }
    }

    #[test]
    fn depth_is_lg_delta() {
        // Lemma 3.1.
        for (t, delta) in [(4, 2), (8, 2), (8, 4), (16, 4), (16, 8), (32, 8), (64, 16), (24, 4)] {
            let net = merging_network(t, delta).expect("valid");
            assert_eq!(net.depth(), delta.trailing_zeros() as usize, "M({t},{delta})");
            assert_eq!(net.input_width(), t);
            assert_eq!(net.output_width(), t);
            assert!(net.is_regular());
            assert_eq!(net.num_balancers(), merger_balancer_count(t, delta));
        }
    }

    #[test]
    fn base_case_m_t_2_merges() {
        // Lemma 3.2: M(t, 2) with step halves differing by at most 2.
        for t in [4usize, 8, 16, 32] {
            check_merging_property(t, 2, 200, 42 + t as u64);
        }
    }

    #[test]
    fn recursive_merger_merges() {
        // Lemma 3.3 for larger δ.
        check_merging_property(8, 4, 300, 7);
        check_merging_property(16, 4, 300, 8);
        check_merging_property(16, 8, 300, 9);
        check_merging_property(32, 8, 200, 10);
        check_merging_property(32, 16, 200, 11);
        check_merging_property(24, 4, 200, 12);
    }

    #[test]
    fn exhaustive_small_merger() {
        // M(8, 4): check *every* pair of step halves with sums up to 20 and
        // difference at most 4.
        let t = 8usize;
        let delta = 4u64;
        let net = merging_network(t, delta as usize).expect("valid");
        for sum_y in 0..20u64 {
            for d in 0..=delta {
                let sum_x = sum_y + d;
                let mut input = step_sequence(sum_x, t / 2);
                input.extend(step_sequence(sum_y, t / 2));
                let out = quiescent_output(&net, &input);
                assert!(is_step(&out), "Σx={sum_x} Σy={sum_y}: {out:?}");
            }
        }
    }

    #[test]
    fn merger_is_not_required_to_handle_larger_differences() {
        // Outside its contract (difference > δ) the merger may fail; verify
        // that it *does* fail for some input, i.e. the δ parameter is tight
        // and we are not accidentally building a full merger of depth lg t.
        let t = 16usize;
        let delta = 2usize;
        let net = merging_network(t, delta).expect("valid");
        let mut violated = false;
        for sum_y in 0..40u64 {
            let sum_x = sum_y + 8; // difference far above δ = 2
            let mut input = step_sequence(sum_x, t / 2);
            input.extend(step_sequence(sum_y, t / 2));
            if !is_step(&quiescent_output(&net, &input)) {
                violated = true;
                break;
            }
        }
        assert!(violated, "M(16, 2) should not merge halves differing by 8");
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(merging_network(8, 3).is_err());
        assert!(merging_network(8, 8).is_err());
        assert!(merging_network(0, 2).is_err());
        assert!(merging_network(6, 2).is_err());
    }

    #[test]
    fn figure6_m84_structure() {
        // Fig. 6 (left): M(8, 4) has two layers of 4 balancers each.
        let net = merging_network(8, 4).expect("valid");
        assert_eq!(net.depth(), 2);
        assert_eq!(net.num_balancers(), 8);
        let layers = net.layers();
        assert_eq!(layers[0].len(), 4);
        assert_eq!(layers[1].len(), 4);
    }

    #[test]
    fn figure6_m164_structure() {
        // Fig. 6 (right): M(16, 4) has two layers of 8 balancers each.
        let net = merging_network(16, 4).expect("valid");
        assert_eq!(net.depth(), 2);
        assert_eq!(net.num_balancers(), 16);
    }
}
