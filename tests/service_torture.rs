//! Torture suite for the multi-tenant service layer: real threads hammer
//! a [`CounterService`] while an evictor churns idle tenants, and every
//! tenant's hand-out is checked for uniqueness and exact-range coverage
//! with the stress harness's [`ValueBitmap`] — the registry-level
//! counterpart of `stress_torture.rs`.
//!
//! `STRESS_TORTURE_OPS` scales the per-thread operation count like the
//! rest of the torture suite (CI keeps it small; the nightly job turns
//! it up).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use counting_networks::runtime::stress::ValueBitmap;
use counting_networks::runtime::{SharedCounter, WaitStrategy};
use counting_networks::service::{
    Backend, CounterService, EvictOutcome, ServiceConfig, TenantCounter,
};

fn ops_scale() -> u64 {
    std::env::var("STRESS_TORTURE_OPS").ok().and_then(|s| s.parse().ok()).unwrap_or(25)
}

/// Per-thread operations for the torture runs.
fn ops_per_thread() -> u64 {
    ops_scale() * 40
}

/// Asserts one tenant's hand-out was exactly `0..watermark`: `marked`
/// values observed, no duplicates (checked online by the caller), first
/// gap at the watermark.
fn assert_tenant_dense(tenant: &str, bitmap: &ValueBitmap, watermark: u64) {
    let marked = bitmap.capacity() - bitmap.missing();
    assert_eq!(marked, watermark, "tenant {tenant}: observed values vs watermark");
    if watermark < bitmap.capacity() {
        assert_eq!(
            bitmap.missing_values(1),
            vec![watermark],
            "tenant {tenant}: hand-out must tile 0..{watermark} with no gap"
        );
    }
}

/// The heart of the satellite: eviction racing live traffic can never
/// fork or gap a tenant's value stream — the registry only retires
/// counters it solely owns and re-creation resumes at the recorded
/// watermark.
#[test]
fn eviction_under_traffic_never_violates_per_tenant_uniqueness() {
    let threads = 8usize;
    let ops = ops_per_thread();
    let tenants = ["alpha", "beta", "gamma", "delta"];
    for (backend, elimination) in
        [(Backend::Network, false), (Backend::Network, true), (Backend::Central, false)]
    {
        let service = CounterService::new(ServiceConfig {
            backend,
            width: 8,
            elimination,
            strategy: WaitStrategy::SpinYield,
            ..ServiceConfig::default()
        });
        let capacity = threads as u64 * ops * 3; // max k below is 3
        let bitmaps: Vec<ValueBitmap> =
            tenants.iter().map(|_| ValueBitmap::new(capacity)).collect();
        let duplicates = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        let evictions = AtomicU64::new(0);

        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|tid| {
                    let (service, bitmaps, duplicates) = (&service, &bitmaps, &duplicates);
                    scope.spawn(move || {
                        let mut scratch = Vec::new();
                        for op in 0..ops {
                            // Deterministic tenant walk + mixed batch
                            // sizes: per-tenant op counts end up unequal
                            // and indivisible, which block reservations
                            // absorb.
                            let tenant = (op as usize + tid * 7) % tenants.len();
                            let k = 1 + ((op as usize + tid) % 3);
                            let counter = service.get_or_create(tenants[tenant]);
                            scratch.clear();
                            counter.next_batch(tid, k, &mut scratch);
                            for &value in &scratch {
                                if !bitmaps[tenant].mark(value) {
                                    duplicates.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            // The handle drops here — an eviction window.
                        }
                    })
                })
                .collect();
            let (service, done, evictions) = (&service, &done, &evictions);
            scope.spawn(move || {
                while !done.load(Ordering::Acquire) {
                    evictions.fetch_add(service.evict_idle() as u64, Ordering::Relaxed);
                    std::thread::yield_now();
                }
            });
            // Join first, stop the evictor, and only then propagate any
            // worker panic — asserting before the flag flip would leave
            // the evictor looping forever and turn a failure into a hang.
            let results: Vec<_> = workers.into_iter().map(|w| w.join()).collect();
            done.store(true, Ordering::Release);
            for result in results {
                result.expect("worker panicked");
            }
        });

        assert_eq!(duplicates.load(Ordering::Relaxed), 0, "{backend:?}/{elimination}");
        for (i, tenant) in tenants.iter().enumerate() {
            assert_tenant_dense(tenant, &bitmaps[i], service.watermark(tenant));
        }
    }
}

/// The racing-creation satellite, under churn: all threads repeatedly
/// resolve the *same* tenant while an evictor tries to retire it. At any
/// instant every live handle must point at one instance (creation is
/// double-checked under the shard lock), and the value stream across
/// however many instance lifetimes the evictor manages must stay dense.
#[test]
fn racing_get_or_create_on_one_tenant_yields_one_counter() {
    let threads = 8usize;
    let ops = ops_per_thread();
    let service = CounterService::new(ServiceConfig {
        backend: Backend::Network,
        width: 8,
        elimination: false,
        ..ServiceConfig::default()
    });
    let capacity = threads as u64 * ops;
    let bitmap = ValueBitmap::new(capacity);
    let duplicates = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let evicted = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|tid| {
                let (service, bitmap, duplicates) = (&service, &bitmap, &duplicates);
                scope.spawn(move || {
                    for _ in 0..ops {
                        let a = service.get_or_create("hot");
                        let b = service.get_or_create("hot");
                        assert!(
                            Arc::ptr_eq(&a, &b),
                            "two concurrent resolutions of a live tenant must agree"
                        );
                        if !bitmap.mark(a.next(tid)) {
                            duplicates.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        let (service, done, evicted) = (&service, &done, &evicted);
        scope.spawn(move || {
            while !done.load(Ordering::Acquire) {
                if let EvictOutcome::Evicted { .. } = service.try_evict("hot") {
                    evicted.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::yield_now();
            }
        });
        // Same ordering as above: flag the evictor down before
        // propagating worker panics, or a failed assertion hangs the
        // test instead of failing it.
        let results: Vec<_> = workers.into_iter().map(|w| w.join()).collect();
        done.store(true, Ordering::Release);
        for result in results {
            result.expect("worker panicked");
        }
    });

    assert_eq!(duplicates.load(Ordering::Relaxed), 0);
    assert_tenant_dense("hot", &bitmap, service.watermark("hot"));
    assert_eq!(service.watermark("hot"), capacity, "every op handed out exactly one value");
}

/// Adapters ride the same per-tenant guarantees: per-thread id
/// generators on shared tenants lease blocks concurrently, and after
/// draining the unconsumed lease tails every tenant's id space is dense.
#[test]
fn id_generators_on_shared_tenants_stay_dense_after_lease_drain() {
    let threads = 6usize;
    let ids_per_thread = ops_per_thread();
    let service = CounterService::new(ServiceConfig {
        backend: Backend::Network,
        width: 8,
        elimination: true,
        ..ServiceConfig::default()
    });
    let tenants = ["orders", "sessions"];
    let leases = [5usize, 8];

    let per_tenant: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|tid| {
                let (service, tenants, leases) = (&service, &tenants, &leases);
                scope.spawn(move || {
                    let mut gens: Vec<_> = tenants
                        .iter()
                        .zip(leases)
                        .map(|(t, &lease)| service.id_generator(t, tid, lease))
                        .collect();
                    let mut collected: Vec<Vec<u64>> = vec![Vec::new(); tenants.len()];
                    for i in 0..ids_per_thread {
                        let which = (i as usize + tid) % tenants.len();
                        collected[which].push(gens[which].next_id());
                    }
                    for (which, gen) in gens.iter_mut().enumerate() {
                        collected[which].extend(gen.take_lease());
                    }
                    collected
                })
            })
            .collect();
        let mut per_tenant: Vec<Vec<u64>> = vec![Vec::new(); tenants.len()];
        for worker in workers {
            for (which, ids) in worker.join().expect("worker panicked").into_iter().enumerate() {
                per_tenant[which].extend(ids);
            }
        }
        per_tenant
    });

    for (which, tenant) in tenants.iter().enumerate() {
        let mut ids = per_tenant[which].clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), per_tenant[which].len(), "tenant {tenant}: duplicate ids");
        assert_eq!(
            ids.last().copied(),
            Some(ids.len() as u64 - 1),
            "tenant {tenant}: consumed + drained leases must tile the id space"
        );
        assert_eq!(service.watermark(tenant), ids.len() as u64, "tenant {tenant}: watermark");
    }
}

/// A `TenantCounter` is itself a `BlockReserve` backend, so service
/// hand-outs compose with every generic layer downstream.
#[test]
fn tenant_handles_compose_with_generic_consumers() {
    let service = CounterService::new(ServiceConfig {
        backend: Backend::Network,
        width: 4,
        elimination: false,
        ..ServiceConfig::default()
    });
    let counter: Arc<TenantCounter> = service.get_or_create("composed");
    // The Arc blanket impl: a shared handle is a SharedCounter.
    fn consume<C: SharedCounter>(counter: &C) -> u64 {
        counter.next(0)
    }
    assert_eq!(consume(&counter), 0);
    assert_eq!(consume(&counter), 1);
    assert_eq!(service.watermark("composed"), 2);
}
