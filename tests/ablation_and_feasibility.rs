//! Experiments E11/E12 through the public facade: the design ablations and
//! the Aharonson–Attiya feasibility analysis.

use counting_networks::efficient::{
    counting_network, counting_network_bitonic_merger, counting_network_no_ladder,
    counting_width_feasible, feasible_output_widths,
};
use counting_networks::net::{is_counting_network_randomized, quiescent_output};
use counting_networks::sim::{measure_contention, SchedulerKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn bitonic_merger_ablation_counts_but_is_deeper_and_more_contended() {
    let (w, t) = (16usize, 64usize);
    let ours = counting_network(w, t).expect("valid");
    let variant = counting_network_bitonic_merger(w, t).expect("valid");

    let mut rng = StdRng::seed_from_u64(71);
    assert!(is_counting_network_randomized(&variant, 80, 64, &mut rng));
    assert!(variant.depth() > ours.depth(), "the ablation must be deeper at t > w");

    let n = 8 * w;
    let m = (n * 40) as u64;
    let c_ours = measure_contention(&ours, n, m, SchedulerKind::RoundRobin, 1).amortized_contention;
    let c_variant =
        measure_contention(&variant, n, m, SchedulerKind::RoundRobin, 1).amortized_contention;
    assert!(
        c_variant > c_ours,
        "the deeper ablation should also be more contended: {c_variant:.1} vs {c_ours:.1}"
    );
}

#[test]
fn no_ladder_ablation_shares_inputs_but_not_correctness() {
    let (w, t) = (8usize, 8usize);
    let ours = counting_network(w, t).expect("valid");
    let variant = counting_network_no_ladder(w, t).expect("builds");
    // Same interface, same token conservation ...
    let input = vec![5u64; w];
    assert_eq!(
        quiescent_output(&ours, &input).iter().sum::<u64>(),
        quiescent_output(&variant, &input).iter().sum::<u64>()
    );
    // ... but only the real construction is a counting network.
    let mut rng = StdRng::seed_from_u64(72);
    assert!(is_counting_network_randomized(&ours, 100, 16, &mut rng));
    assert!(!is_counting_network_randomized(&variant, 300, 16, &mut rng));
}

#[test]
fn feasibility_analysis_matches_the_constructible_widths() {
    // With only (2,2)-balancers the feasible widths are powers of two —
    // and those are exactly the widths our regular constructions accept.
    assert_eq!(feasible_output_widths(&[2], 16), vec![1, 2, 4, 8, 16]);
    for w in [2usize, 4, 8, 16] {
        assert!(counting_network(w, w).is_ok());
    }
    for w in [6usize, 10, 12] {
        assert!(counting_network(w, w).is_err());
        assert!(
            counting_width_feasible(w, &[2]).is_err() || w == 12,
            "width {w} with only binary balancers"
        );
    }
    // Width 12 = 2²·3 is infeasible with binary balancers but becomes
    // feasible once a width divisible by 3 is available.
    assert!(counting_width_feasible(12, &[2]).is_err());
    assert!(counting_width_feasible(12, &[2, 6]).is_ok());
}
