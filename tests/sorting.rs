//! Experiment E8: the sorting-network byproduct (Section 7).

use counting_networks::baseline::bitonic_counting_network;
use counting_networks::efficient::counting_network;
use counting_networks::sorting::{
    is_sorting_network_exhaustive, is_sorting_network_randomized, ComparatorNetwork,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn cww_yields_a_sorting_network_for_all_small_widths() {
    for w in [2usize, 4, 8, 16] {
        let net = counting_network(w, w).expect("valid");
        let sorter = ComparatorNetwork::from_balancing(net).expect("C(w,w) is regular");
        assert!(is_sorting_network_exhaustive(&sorter), "width {w}");
        let k = w.trailing_zeros() as usize;
        assert_eq!(sorter.depth(), (k * k + k) / 2);
    }
}

#[test]
fn derived_sorter_depth_matches_theorem_4_1() {
    for w in [4usize, 8, 16, 32, 64, 128] {
        let k = w.trailing_zeros() as usize;
        let net = counting_network(w, w).expect("valid");
        let sorter = ComparatorNetwork::from_balancing(net).expect("regular");
        assert_eq!(sorter.depth(), (k * k + k) / 2);
    }
}

#[test]
fn sorts_arbitrary_data_with_duplicates() {
    let mut rng = StdRng::seed_from_u64(77);
    let w = 32usize;
    let net = counting_network(w, w).expect("valid");
    let sorter = ComparatorNetwork::from_balancing(net).expect("regular");
    for _ in 0..50 {
        let data: Vec<u16> = (0..w).map(|_| rng.gen_range(0..10)).collect();
        let out = sorter.apply(&data);
        let mut expected = data.clone();
        expected.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(out, expected);
    }
}

#[test]
fn irregular_networks_cannot_be_turned_into_comparator_networks() {
    let net = counting_network(8, 16).expect("valid");
    assert!(ComparatorNetwork::from_balancing(net).is_err());
}

#[test]
fn wide_randomized_verification() {
    let mut rng = StdRng::seed_from_u64(78);
    for w in [64usize, 128] {
        let net = counting_network(w, w).expect("valid");
        let sorter = ComparatorNetwork::from_balancing(net).expect("regular");
        assert!(is_sorting_network_randomized(&sorter, 200, &mut rng), "width {w}");
    }
}

#[test]
fn derived_sorter_and_bitonic_sorter_agree_on_outputs() {
    let mut rng = StdRng::seed_from_u64(79);
    let w = 16usize;
    let ours =
        ComparatorNetwork::from_balancing(counting_network(w, w).expect("valid")).expect("regular");
    let bitonic = ComparatorNetwork::from_balancing(bitonic_counting_network(w).expect("valid"))
        .expect("regular");
    for _ in 0..100 {
        let data: Vec<u32> = (0..w).map(|_| rng.gen_range(0..1_000)).collect();
        assert_eq!(ours.apply(&data), bitonic.apply(&data));
    }
}
