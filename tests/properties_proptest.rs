//! Property-based tests (proptest) over the core invariants.
//!
//! These complement the randomized checks inside the crates with shrinking
//! counterexample search over:
//!
//! * sequence lemmas (Section 2.1),
//! * the counting property of `C(w, t)` and of the baselines (E3),
//! * the difference-merging contract of `M(t, δ)`,
//! * butterfly smoothing (E4),
//! * agreement between the closed-form quiescent evaluation and the
//!   explicit token executor,
//! * Fetch&Increment value assignment,
//! * the sorting byproduct (E8).

use counting_networks::baseline::{bitonic_counting_network, periodic_counting_network};
use counting_networks::efficient::{counting_network, forward_butterfly, merging_network};
use counting_networks::net::{
    assign_counter_values, balancer_step_output, is_k_smooth, is_step, quiescent_output,
    step_sequence, TokenExecutor,
};
use counting_networks::runtime::stress::{run_stress, Batching, Scenario, StressConfig};
use counting_networks::runtime::{
    CentralCounter, DiffractingCounter, EliminationCounter, LockCounter, NetworkCounter,
    SharedCounter,
};
use counting_networks::sorting::ComparatorNetwork;
use proptest::prelude::*;

/// Strategy: a power-of-two width 2..=16 together with an input sequence.
fn width_and_input(max_tokens: u64) -> impl Strategy<Value = (usize, Vec<u64>)> {
    (1usize..=4).prop_flat_map(move |k| {
        let w = 1usize << k;
        (Just(w), proptest::collection::vec(0..=max_tokens, w))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn canonical_step_sequences_are_step((total, width) in (0u64..10_000, 1usize..64)) {
        let s = step_sequence(total, width);
        prop_assert!(is_step(&s));
        prop_assert_eq!(s.iter().sum::<u64>(), total);
    }

    #[test]
    fn balancer_outputs_are_step_and_sum_preserving((total, q) in (0u64..10_000, 1usize..32)) {
        let out = balancer_step_output(total, q);
        prop_assert!(is_step(&out));
        prop_assert_eq!(out.iter().sum::<u64>(), total);
    }

    #[test]
    fn lemma_2_1_subsequences_of_step_sequences_are_step(
        (total, width) in (0u64..1_000, 2usize..40),
        // a bitmask choosing the subsequence
        mask in proptest::collection::vec(any::<bool>(), 40),
    ) {
        let s = step_sequence(total, width);
        let sub: Vec<u64> = s.iter().zip(&mask).filter(|(_, &m)| m).map(|(&v, _)| v).collect();
        prop_assert!(is_step(&sub));
    }

    #[test]
    fn cwt_counts_for_all_inputs((w, input) in width_and_input(64), p in 1usize..4) {
        let t = w * p;
        let net = counting_network(w, t).expect("valid");
        let out = quiescent_output(&net, &input);
        prop_assert!(is_step(&out), "C({},{}) on {:?} -> {:?}", w, t, input, out);
        prop_assert_eq!(out.iter().sum::<u64>(), input.iter().sum::<u64>());
    }

    #[test]
    fn bitonic_and_periodic_count_for_all_inputs((w, input) in width_and_input(64)) {
        let bitonic = bitonic_counting_network(w).expect("valid");
        prop_assert!(is_step(&quiescent_output(&bitonic, &input)));
        let periodic = periodic_counting_network(w).expect("valid");
        prop_assert!(is_step(&quiescent_output(&periodic, &input)));
    }

    #[test]
    fn merger_contract_holds(
        k in 1usize..4,          // delta = 2^k
        factor in 1usize..4,     // t = factor * 2^(k+1)
        sum_y in 0u64..500,
        diff_frac in 0u64..=100,
    ) {
        let delta = 1usize << k;
        let t = factor * 2 * delta;
        let diff = diff_frac * delta as u64 / 100;
        let sum_x = sum_y + diff;
        let net = merging_network(t, delta).expect("valid");
        let mut input = step_sequence(sum_x, t / 2);
        input.extend(step_sequence(sum_y, t / 2));
        let out = quiescent_output(&net, &input);
        prop_assert!(is_step(&out), "M({},{}) Σx={} Σy={}", t, delta, sum_x, sum_y);
    }

    #[test]
    fn butterfly_is_lgw_smoothing((w, input) in width_and_input(200)) {
        let d = forward_butterfly(w).expect("valid");
        let out = quiescent_output(&d, &input);
        prop_assert!(is_k_smooth(&out, w.trailing_zeros() as u64));
    }

    #[test]
    fn token_executor_agrees_with_closed_form((w, input) in width_and_input(32), p in 1usize..3) {
        let net = counting_network(w, w * p).expect("valid");
        let mut exec = TokenExecutor::new(&net);
        exec.inject_sequence(&input);
        prop_assert_eq!(exec.output_counts(), quiescent_output(&net, &input));
    }

    #[test]
    fn fetch_increment_values_partition_the_range((w, input) in width_and_input(32)) {
        let net = counting_network(w, 2 * w).expect("valid");
        let out = quiescent_output(&net, &input);
        let m: u64 = input.iter().sum();
        let mut values: Vec<u64> = assign_counter_values(&out).into_iter().flatten().collect();
        values.sort_unstable();
        prop_assert_eq!(values, (0..m).collect::<Vec<_>>());
    }

    #[test]
    fn derived_sorter_sorts_arbitrary_data(
        k in 1usize..5,
        data in proptest::collection::vec(0u32..1_000, 32),
    ) {
        let w = 1usize << k;
        let net = counting_network(w, w).expect("valid");
        let sorter = ComparatorNetwork::from_balancing(net).expect("regular");
        let slice = &data[..w];
        let out = sorter.apply(slice);
        let mut expected = slice.to_vec();
        expected.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn threaded_network_counter_hands_out_the_exact_range(
        (w, p) in (1usize..=3).prop_flat_map(|k| (Just(1usize << k), 1usize..=3)),
        ops_per_thread in 1u64..=32,
        batch in 1usize..=3,
    ) {
        // Real-thread Fetch&Increment over a random valid C(w, t): the
        // values handed out must be exactly 0..m. For batched runs the
        // total traversal count must be a multiple of t (see
        // `SharedCounter::next_batch`), so round the per-thread quota up
        // to a multiple of t (8 threads × multiple of t stays one).
        let t = w * p;
        let ops_per_thread = if batch > 1 {
            ops_per_thread.div_ceil(t as u64) * t as u64
        } else {
            ops_per_thread
        };
        let net = counting_network(w, t).expect("valid");
        let counter = NetworkCounter::new(format!("C({w},{t})"), &net);
        let config = StressConfig {
            threads: 8,
            ops_per_thread,
            batch: Batching::Fixed(batch),
            scenario: Scenario::Steady,
            record_tokens: false,
        };
        let report = run_stress(&counter, &config);
        prop_assert!(
            report.is_exact_range(),
            "C({},{}) ops={} batch={}: {:?}", w, t, ops_per_thread, batch, report
        );
    }

    #[test]
    fn mixed_batches_through_elimination_hand_out_the_exact_range(
        // Random per-thread batch-size sequences, mixed k ∈ 1..=32 — the
        // workload whose exact-range guarantee raw stride reservations
        // cannot provide. Every counter, routed through the elimination
        // layer, must hand out exactly 0..m; shrinking finds the minimal
        // offending size mix if the split logic ever regresses.
        per_thread in proptest::collection::vec(
            proptest::collection::vec(1usize..=32, 0..6),
            8,
        ),
        slots in 1usize..=4,
        spin in 0usize..=256,
    ) {
        type Make = fn(usize, usize) -> Box<dyn SharedCounter + Send + Sync>;
        let make: [(&str, Make); 4] = [
            ("C(4,8)", |s, p| {
                let net = counting_network(4, 8).expect("valid");
                Box::new(EliminationCounter::with_arena(NetworkCounter::new("C(4,8)", &net), s, p))
            }),
            ("difftree", |s, p| {
                Box::new(EliminationCounter::with_arena(DiffractingCounter::new(4, 2, 16), s, p))
            }),
            ("central", |s, p| Box::new(EliminationCounter::with_arena(CentralCounter::new(), s, p))),
            ("mutex", |s, p| Box::new(EliminationCounter::with_arena(LockCounter::new(), s, p))),
        ];
        let m: u64 = per_thread.iter().flatten().map(|&k| k as u64).sum();
        for (name, factory) in make {
            // The arena geometry is part of the explored space.
            let counter = factory(slots, spin);
            let values = std::sync::Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for (tid, sizes) in per_thread.iter().enumerate() {
                    let counter = counter.as_ref();
                    let values = &values;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        for &k in sizes {
                            counter.next_batch(tid, k, &mut local);
                        }
                        values.lock().expect("poisoned").extend(local);
                    });
                }
            });
            let mut values = values.into_inner().expect("poisoned");
            values.sort_unstable();
            prop_assert_eq!(
                &values,
                &(0..m).collect::<Vec<_>>(),
                "{} handed out a broken range for sizes {:?}",
                name,
                per_thread
            );
        }
    }

    #[test]
    fn counting_is_schedule_independent((w, input) in width_and_input(16), seed in any::<u64>()) {
        // Injecting the same per-wire token counts in a different
        // interleaving leaves the quiescent output unchanged.
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let net = counting_network(w, w).expect("valid");
        let mut order: Vec<usize> = input
            .iter()
            .enumerate()
            .flat_map(|(wire, &count)| std::iter::repeat_n(wire, count as usize))
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let mut exec = TokenExecutor::new(&net);
        for wire in order {
            exec.inject(wire);
        }
        prop_assert_eq!(exec.output_counts(), quiescent_output(&net, &input));
    }
}
