//! Experiments E5/E6 (sanity slice): the contention claims of
//! Sections 1.3.1 and 1.3.2 in the stall-counting simulator.
//!
//! The full sweeps live in the benchmark harness (`crates/bench`); these
//! integration tests pin the qualitative facts so regressions are caught
//! by `cargo test`.

use counting_networks::baseline::{bitonic_counting_network, diffracting_tree};
use counting_networks::efficient::{
    block_of_layer, counting_network, cwt_contention_bound, BlockKind,
};
use counting_networks::sim::{measure_contention, SchedulerKind};

#[test]
fn wider_output_width_lowers_contention_at_high_concurrency() {
    // Section 1.3.1: increasing t decreases contention while depth stays
    // fixed. Measured with lock-step scheduling at n = 16w.
    let w = 8usize;
    let n = 16 * w;
    let m = (n * 50) as u64;
    let mut previous = f64::INFINITY;
    for p in [1usize, 3, 8] {
        let net = counting_network(w, w * p).expect("valid");
        assert_eq!(net.depth(), 6, "depth must not depend on t");
        let c = measure_contention(&net, n, m, SchedulerKind::RoundRobin, 1).amortized_contention;
        assert!(
            c <= previous * 1.05,
            "contention should not increase with t (t={}: {c} vs previous {previous})",
            w * p
        );
        previous = c;
    }
}

#[test]
fn cwlgw_beats_bitonic_at_high_concurrency() {
    // The headline comparison: C(w, w·lgw) vs Bitonic[w] at n >= w·lgw.
    let w = 16usize;
    let lgw = w.trailing_zeros() as usize;
    let n = 8 * w;
    let m = (n * 40) as u64;
    let ours = counting_network(w, w * lgw).expect("valid");
    let bitonic = bitonic_counting_network(w).expect("valid");
    let c_ours = measure_contention(&ours, n, m, SchedulerKind::RoundRobin, 2).amortized_contention;
    let c_bitonic =
        measure_contention(&bitonic, n, m, SchedulerKind::RoundRobin, 2).amortized_contention;
    assert!(
        c_ours < c_bitonic,
        "C({w},{}) = {c_ours:.2} should be below Bitonic[{w}] = {c_bitonic:.2}",
        w * lgw
    );
}

#[test]
fn measured_contention_respects_the_theorem_6_7_bound() {
    // The bound is an upper bound over *all* schedules, so any measured
    // schedule must sit below it.
    for (w, t, n) in [(8usize, 8usize, 64usize), (8, 24, 64), (16, 16, 128), (16, 64, 128)] {
        let net = counting_network(w, t).expect("valid");
        let m = (n * 40) as u64;
        for scheduler in [SchedulerKind::RoundRobin, SchedulerKind::GreedyHotspot] {
            let measured = measure_contention(&net, n, m, scheduler, 5).amortized_contention;
            let bound = cwt_contention_bound(n, w, t);
            assert!(
                measured <= bound,
                "C({w},{t}) at n={n} under {scheduler:?}: measured {measured:.1} exceeds bound {bound:.1}"
            );
        }
    }
}

#[test]
fn diffracting_tree_contention_grows_linearly_with_n() {
    // Section 1.4.1: the adversary piles every token on the root, so the
    // amortized contention is Θ(n). Even the greedy-hotspot heuristic
    // exposes growth proportional to n (within a factor), unlike C(w,t).
    let w = 16usize;
    let tree = diffracting_tree(w).expect("valid");
    let ours = counting_network(w, w * 4).expect("valid");
    let mut tree_prev = 0.0f64;
    for n in [16usize, 64, 256] {
        let m = (n * 30) as u64;
        let c_tree =
            measure_contention(&tree, n, m, SchedulerKind::RoundRobin, 6).amortized_contention;
        let c_ours =
            measure_contention(&ours, n, m, SchedulerKind::RoundRobin, 6).amortized_contention;
        assert!(c_tree >= tree_prev, "tree contention must not shrink with n");
        tree_prev = c_tree;
        if n >= 64 {
            assert!(
                c_tree > c_ours,
                "at n={n} the tree ({c_tree:.1}) should be worse than C(w,4w) ({c_ours:.1})"
            );
        }
    }
    // Linear shape: quadrupling n should multiply contention by roughly 4
    // (allow a wide margin for the heuristic scheduler).
    let c64 =
        measure_contention(&tree, 64, 64 * 30, SchedulerKind::RoundRobin, 6).amortized_contention;
    let c256 =
        measure_contention(&tree, 256, 256 * 30, SchedulerKind::RoundRobin, 6).amortized_contention;
    assert!(c256 / c64 > 2.0, "tree contention should scale ~linearly in n");
}

#[test]
fn block_nc_dominates_total_stalls_but_shrinks_with_t() {
    // Section 1.3.2: Nc has most of the depth, so it collects most stalls;
    // increasing t reduces the per-token stalls inside Nc.
    let w = 16usize;
    let lgw = w.trailing_zeros() as usize;
    let n = 8 * w;
    let m = (n * 40) as u64;

    let mut nc_per_token = Vec::new();
    for p in [1usize, 4] {
        let t = w * p;
        let net = counting_network(w, t).expect("valid");
        let report = measure_contention(&net, n, m, SchedulerKind::RoundRobin, 7);
        let depth = net.depth();
        // Attribute layer stalls to blocks.
        let mut per_block = [0u64; 3];
        for layer in 1..=depth {
            let idx = match block_of_layer(w, layer) {
                BlockKind::A => 0,
                BlockKind::B => 1,
                BlockKind::C => 2,
            };
            per_block[idx] += report.per_layer_stalls[layer - 1];
        }
        nc_per_token.push(per_block[2] as f64 / m as f64);
        // Nc spans (lg²w - lgw)/2 = 6 of the 10 layers; with t = w it must
        // dominate the stall count.
        if p == 1 {
            assert!(
                per_block[2] > per_block[0] + per_block[1],
                "with t = w, Nc should collect the majority of stalls: {per_block:?}"
            );
        }
        let _ = lgw;
    }
    assert!(
        nc_per_token[1] < nc_per_token[0],
        "Nc contention should fall as t grows: {nc_per_token:?}"
    );
}
