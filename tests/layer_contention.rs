//! The layer-contention methodology of Section 6.2 (Corollary 6.4),
//! validated empirically.
//!
//! Corollary 6.4: a layer of balancers with maximum output width `q` and
//! layer output width `W`, whose input is `k`-smooth in every quiescent
//! state, has amortized contention at most `q·n/W + q·(k+1)`.
//!
//! In `C(w, t)` the layers of block `N_c` have `q = 2`, width `W = t`, and
//! their inputs are `s`-smooth with `s = ⌊w·lgw/t⌋ + 2` (Lemma 6.6 plus
//! Lemma 2.5). We measure per-layer stalls under the lock-step scheduler
//! and check each `N_c` layer against its bound, and we verify the peak
//! queue lengths shrink as `t` grows (the "wider is cooler" argument).

use counting_networks::efficient::{
    block_of_layer, bounds::prefix_smoothness_bound, counting_network, layer_contention_bound,
    BlockKind,
};
use counting_networks::sim::{measure_contention, SchedulerKind};

#[test]
fn nc_layer_contention_respects_corollary_6_4() {
    let w = 16usize;
    let n = 8 * w;
    let m = (n * 50) as u64;
    for p in [1usize, 4, 8] {
        let t = w * p;
        let net = counting_network(w, t).expect("valid");
        let report = measure_contention(&net, n, m, SchedulerKind::RoundRobin, 3);
        let s = prefix_smoothness_bound(w, t);
        let bound = layer_contention_bound(2, n, t, s);
        for layer in 1..=net.depth() {
            if block_of_layer(w, layer) != BlockKind::C {
                continue;
            }
            let measured = report.per_layer_stalls[layer - 1] as f64 / m as f64;
            assert!(
                measured <= bound,
                "C({w},{t}) layer {layer}: measured {measured:.2} exceeds Corollary 6.4 bound {bound:.2}"
            );
        }
    }
}

#[test]
fn peak_queues_in_nc_shrink_as_t_grows() {
    let w = 16usize;
    let n = 8 * w;
    let m = (n * 50) as u64;
    let mut peaks = Vec::new();
    for p in [1usize, 8] {
        let t = w * p;
        let net = counting_network(w, t).expect("valid");
        let report = measure_contention(&net, n, m, SchedulerKind::RoundRobin, 3);
        // The hottest queue anywhere inside block Nc.
        let peak = net
            .layers()
            .iter()
            .enumerate()
            .filter(|(i, _)| block_of_layer(w, i + 1) == BlockKind::C)
            .flat_map(|(_, layer)| layer.iter())
            .map(|id| report.per_balancer_peak_waiting[id.index()])
            .max()
            .expect("Nc is non-empty");
        peaks.push(peak);
    }
    assert!(peaks[1] <= peaks[0], "peak Nc queue should not grow when t grows: {peaks:?}");
}

#[test]
fn every_balancer_processes_as_many_tokens_as_its_stalls_require() {
    // Internal consistency of the stall accounting: a balancer that
    // processed T tokens can have caused at most T·(peak-1) stalls.
    let net = counting_network(8, 16).expect("valid");
    let report = measure_contention(&net, 32, 32 * 60, SchedulerKind::GreedyHotspot, 11);
    for i in 0..net.num_balancers() {
        let t = report.per_balancer_traversals[i];
        let stalls = report.per_balancer_stalls[i];
        let peak = report.per_balancer_peak_waiting[i];
        assert!(peak >= 1, "every balancer saw at least one waiter");
        assert!(
            stalls <= t.saturating_mul(peak.saturating_sub(1)),
            "balancer {i}: {stalls} stalls cannot arise from {t} traversals with peak queue {peak}"
        );
    }
}
