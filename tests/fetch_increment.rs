//! Experiment E10: Fetch&Increment semantics (Section 1.1), sequentially,
//! in simulation, and under real concurrency.

use std::collections::HashSet;
use std::sync::Mutex;

use counting_networks::baseline::{
    bitonic_counting_network, diffracting_tree, periodic_counting_network,
};
use counting_networks::efficient::counting_network;
use counting_networks::net::{assign_counter_values, quiescent_output};
use counting_networks::runtime::{NetworkCounter, SharedCounter};
use counting_networks::sim::{measure_contention, SchedulerKind};

#[test]
fn quiescent_counter_values_form_the_exact_range() {
    for (w, t) in [(4usize, 4usize), (4, 8), (8, 8), (8, 24), (16, 64)] {
        let net = counting_network(w, t).expect("valid");
        let input: Vec<u64> = (0..w as u64).map(|i| 3 * i + 1).collect();
        let m: u64 = input.iter().sum();
        let out = quiescent_output(&net, &input);
        let mut values: Vec<u64> = assign_counter_values(&out).into_iter().flatten().collect();
        values.sort_unstable();
        assert_eq!(values, (0..m).collect::<Vec<_>>(), "C({w},{t})");
    }
}

#[test]
fn simulated_runs_hand_out_the_exact_range_for_every_network() {
    let nets = vec![
        ("C(8,8)".to_owned(), counting_network(8, 8).expect("valid")),
        ("C(8,24)".to_owned(), counting_network(8, 24).expect("valid")),
        ("Bitonic[8]".to_owned(), bitonic_counting_network(8).expect("valid")),
        ("Periodic[8]".to_owned(), periodic_counting_network(8).expect("valid")),
        ("DiffTree[8]".to_owned(), diffracting_tree(8).expect("valid")),
    ];
    for (name, net) in &nets {
        for scheduler in
            [SchedulerKind::RoundRobin, SchedulerKind::Random, SchedulerKind::GreedyHotspot]
        {
            let report = measure_contention(net, 12, 360, scheduler, 3);
            assert!(
                report.fetch_increment.is_exact_range,
                "{name} under {scheduler:?} handed out a wrong value set"
            );
            assert_eq!(report.fetch_increment.values_handed_out, 360);
        }
    }
}

#[test]
fn concurrent_network_counter_values_are_unique_and_dense() {
    let threads = 8usize;
    let per_thread = 5_000usize;
    for (name, net) in [
        ("C(8,8)", counting_network(8, 8).expect("valid")),
        ("C(8,24)", counting_network(8, 24).expect("valid")),
        ("Bitonic[8]", bitonic_counting_network(8).expect("valid")),
    ] {
        let counter = NetworkCounter::new(name, &net);
        let collected = Mutex::new(Vec::with_capacity(threads * per_thread));
        std::thread::scope(|scope| {
            for tid in 0..threads {
                let counter = &counter;
                let collected = &collected;
                scope.spawn(move || {
                    let mut local = Vec::with_capacity(per_thread);
                    for _ in 0..per_thread {
                        local.push(counter.next(tid));
                    }
                    collected.lock().expect("not poisoned").extend(local);
                });
            }
        });
        let values = collected.into_inner().expect("not poisoned");
        let m = (threads * per_thread) as u64;
        let unique: HashSet<u64> = values.iter().copied().collect();
        assert_eq!(unique.len() as u64, m, "{name}: duplicate counter values");
        assert!(values.iter().all(|&v| v < m), "{name}: value outside 0..m");
    }
}

#[test]
fn diffracting_tree_counter_with_single_entry_wire() {
    // The diffracting tree has a single input wire; every thread enters
    // there. Values must still be unique and dense.
    let net = diffracting_tree(16).expect("valid");
    let counter = NetworkCounter::new("DiffTree[16]", &net);
    let threads = 4usize;
    let per_thread = 2_000usize;
    let collected = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let counter = &counter;
            let collected = &collected;
            scope.spawn(move || {
                let mut local = Vec::with_capacity(per_thread);
                for _ in 0..per_thread {
                    local.push(counter.next(tid));
                }
                collected.lock().expect("not poisoned").extend(local);
            });
        }
    });
    let values = collected.into_inner().expect("not poisoned");
    let m = (threads * per_thread) as u64;
    let unique: HashSet<u64> = values.iter().copied().collect();
    assert_eq!(unique.len() as u64, m);
    assert!(values.iter().all(|&v| v < m));
}
