//! Experiment E1: the constructions drawn in the paper's figures.
//!
//! Figures 1–3, 5–6 and 10–13 depict concrete instances of the ladder,
//! merging and counting networks. These tests rebuild every depicted
//! instance and check the structural facts visible in the figures:
//! widths, depths, balancer counts, layer sizes and balancer shapes.

use counting_networks::baseline::{bitonic_counting_network, periodic_counting_network};
use counting_networks::efficient::{
    counting_depth, counting_network, ladder, merger_depth, merging_network,
};
use counting_networks::net::{is_step, quiescent_output};

#[test]
fn fig1_left_the_4_6_balancer_distribution() {
    // A (4,6)-balancer that received 7 tokens emits 2,1,1,1,1,1.
    let out = counting_networks::net::balancer_step_output(7, 6);
    assert_eq!(out, vec![2, 1, 1, 1, 1, 1]);
}

#[test]
fn fig1_right_c48() {
    let net = counting_network(4, 8).expect("valid");
    assert_eq!(net.input_width(), 4);
    assert_eq!(net.output_width(), 8);
    assert_eq!(net.depth(), 3);
    // The figure's input: 4, 2, 3, 4 tokens; 13 tokens spread as a step.
    let out = quiescent_output(&net, &[4, 2, 3, 4]);
    assert!(is_step(&out));
    assert_eq!(out.iter().sum::<u64>(), 13);
}

#[test]
fn fig2_regular_networks_c44_and_c88() {
    let c44 = counting_network(4, 4).expect("valid");
    assert_eq!(c44.depth(), 3);
    assert!(c44.is_regular());
    assert_eq!(c44.balancer_census(), vec![((2, 2), c44.num_balancers())]);

    let c88 = counting_network(8, 8).expect("valid");
    assert_eq!(c88.depth(), 6);
    assert!(c88.is_regular());
}

#[test]
fn fig3_block_partition_of_c816() {
    // C(8,16): blocks Na (2 layers of width 8), Nb (1 layer of (2,4)
    // balancers), Nc (3 layers of width 16).
    let net = counting_network(8, 16).expect("valid");
    assert_eq!(net.depth(), 6);
    let layers = net.layers();
    assert_eq!(layers.len(), 6);
    for layer in &layers[..2] {
        assert_eq!(layer.len(), 4, "Na layers have w/2 = 4 balancers");
    }
    assert_eq!(layers[2].len(), 4, "Nb layer has w/2 balancers");
    for id in &layers[2] {
        let b = net.balancer(*id);
        assert_eq!((b.fan_in, b.fan_out), (2, 4), "Nb balancers are (2, 2p) with p = 2");
    }
    for layer in &layers[3..] {
        assert_eq!(layer.len(), 8, "Nc layers have t/2 = 8 balancers");
    }
}

#[test]
fn fig5_merger_base_case_is_one_layer() {
    for t in [4usize, 8, 16, 32] {
        let m = merging_network(t, 2).expect("valid");
        assert_eq!(m.depth(), 1);
        assert_eq!(m.num_balancers(), t / 2);
    }
}

#[test]
fn fig6_mergers_m84_and_m164() {
    let m84 = merging_network(8, 4).expect("valid");
    assert_eq!((m84.depth(), m84.num_balancers()), (2, 8));
    let m164 = merging_network(16, 4).expect("valid");
    assert_eq!((m164.depth(), m164.num_balancers()), (2, 16));
    assert_eq!(merger_depth(4), 2);
}

#[test]
fn fig10_recursive_structure_depth_recurrence() {
    // depth(C(w,t)) = 1 + depth(C(w/2,t/2)) + depth(M(t, w/2)).
    for (w, t) in [(4usize, 8usize), (8, 16), (16, 16), (16, 64), (32, 32)] {
        let whole = counting_network(w, t).expect("valid").depth();
        let half = counting_network(w / 2, t / 2).expect("valid").depth();
        let merger = merging_network(t, w / 2).expect("valid").depth();
        assert_eq!(whole, 1 + half + merger, "C({w},{t})");
    }
}

#[test]
fn fig11_12_13_straightened_networks() {
    // Fig. 11: C(4,4) and C(4,8); Fig. 12: C(8,8); Fig. 13: C(8,16).
    for (w, t, expected_depth) in [(4, 4, 3), (4, 8, 3), (8, 8, 6), (8, 16, 6)] {
        let net = counting_network(w, t).expect("valid");
        assert_eq!(net.depth(), expected_depth, "C({w},{t})");
        assert_eq!(net.depth(), counting_depth(w));
        // Every depicted instance is a counting network; spot-check with a
        // skewed input.
        let mut input = vec![0u64; w];
        input[0] = 3 * w as u64;
        input[w - 1] = 1;
        assert!(is_step(&quiescent_output(&net, &input)));
    }
}

#[test]
fn ladder_of_fig10_is_one_layer_of_w_half_balancers() {
    for w in [4usize, 8, 16] {
        let l = ladder(w).expect("valid");
        assert_eq!(l.depth(), 1);
        assert_eq!(l.num_balancers(), w / 2);
    }
}

#[test]
fn comparison_networks_referenced_in_section_1_3() {
    // The bitonic network has the same depth as C(w, w); the periodic one
    // is deeper.
    for k in 1..6 {
        let w = 1usize << k;
        let ours = counting_network(w, w).expect("valid");
        let bitonic = bitonic_counting_network(w).expect("valid");
        let periodic = periodic_counting_network(w).expect("valid");
        assert_eq!(ours.depth(), bitonic.depth());
        assert!(periodic.depth() >= ours.depth());
    }
}
