//! Torture suite: real threads × adversarial workload scenarios × every
//! counter implementation, with the Fetch&Increment contract checked
//! online by the stress harness (`counting_networks::runtime::stress`).
//!
//! Every cell of the matrix drives ≥ 8 real threads and verifies that the
//! handed-out values are exactly `0..m` — no duplicates, no gaps, nothing
//! out of range — and both the batched fast path (`next_batch`) and the
//! mixed-batch-size elimination layer are exercised under the same
//! torture. `STRESS_TORTURE_OPS` scales the per-thread operation count
//! (CI runs tier-1 with a small value to keep it fast; the nightly
//! torture job raises it).

use counting_networks::baseline::{
    bitonic_counting_network, diffracting_tree, periodic_counting_network,
};
use counting_networks::efficient::counting_network;
use counting_networks::net::Network;
use counting_networks::runtime::stress::{run_stress, Batching, Scenario, StressConfig};
use counting_networks::runtime::{
    CentralCounter, DiffractingCounter, EliminationConfig, EliminationCounter, LockCounter,
    NetworkCounter, SharedCounter, WaitStrategy,
};

const THREADS: usize = 8;

/// Per-thread operations per run = `24 × scale`: 24 is a common multiple
/// of every output width in the matrix (8 and 24), so batched stride
/// reservations tile the value range exactly at quiescence (see
/// `SharedCounter::next_batch`).
fn ops_scale() -> u64 {
    std::env::var("STRESS_TORTURE_OPS").ok().and_then(|s| s.parse().ok()).unwrap_or(25)
}

fn scenarios() -> [Scenario; 6] {
    [
        Scenario::Steady,
        Scenario::Bursty { phases: 6 },
        Scenario::Skewed { groups: 2 },
        Scenario::Churn { stagger_micros: 200 },
        Scenario::Oscillating { pulses: 6 },
        Scenario::Pinned { nodes: 2 },
    ]
}

/// A named factory producing a fresh counter per run (a counter hands out
/// each value once).
type CounterFactory = (String, Box<dyn Fn() -> Box<dyn SharedCounter>>);

/// The counter matrix: the paper's `C(w,t)` at two output widths, the
/// bitonic and periodic baselines, the structural and the prism-runtime
/// diffracting trees, and the two centralized baselines.
fn counters() -> Vec<CounterFactory> {
    fn network(name: &'static str, net: Network) -> CounterFactory {
        (name.to_owned(), Box::new(move || Box::new(NetworkCounter::new(name, &net))))
    }
    vec![
        network("C(8,8)", counting_network(8, 8).expect("valid")),
        network("C(8,24)", counting_network(8, 24).expect("valid")),
        network("Bitonic[8]", bitonic_counting_network(8).expect("valid")),
        network("Periodic[8]", periodic_counting_network(8).expect("valid")),
        network("DiffTree[8]", diffracting_tree(8).expect("valid")),
        ("prism DiffTree[8]".to_owned(), Box::new(|| Box::new(DiffractingCounter::new(8, 4, 64)))),
        ("central".to_owned(), Box::new(|| Box::new(CentralCounter::new()))),
        ("mutex".to_owned(), Box::new(|| Box::new(LockCounter::new()))),
    ]
}

#[test]
fn torture_matrix_unbatched_hands_out_the_exact_range() {
    let ops_per_thread = 24 * ops_scale();
    for (name, make) in counters() {
        for scenario in scenarios() {
            let config = StressConfig {
                threads: THREADS,
                ops_per_thread,
                batch: Batching::Fixed(1),
                scenario,
                record_tokens: false,
            };
            let report = run_stress(make().as_ref(), &config);
            assert!(
                report.is_exact_range(),
                "{name} under {} broke the counting contract: {report:?}",
                scenario.label()
            );
            assert_eq!(report.total_values, THREADS as u64 * ops_per_thread);
        }
    }
}

#[test]
fn torture_matrix_batched_hands_out_the_exact_range() {
    // Batches of 4: total traversals (8 threads × 24·scale ops) stay a
    // multiple of every output width, so the exact-range guarantee of
    // `next_batch` applies.
    let ops_per_thread = 24 * ops_scale();
    for (name, make) in counters() {
        for scenario in [scenarios()[0], scenarios()[1], scenarios()[2]] {
            let config = StressConfig {
                threads: THREADS,
                ops_per_thread,
                batch: Batching::Fixed(4),
                scenario,
                record_tokens: false,
            };
            let report = run_stress(make().as_ref(), &config);
            assert!(
                report.is_exact_range(),
                "{name} with next_batch(4) under {} broke the counting contract: {report:?}",
                scenario.label()
            );
            assert_eq!(report.total_values, THREADS as u64 * ops_per_thread * 4);
        }
    }
}

/// The four counters of the elimination matrix, each wrapped in the
/// arena layer (fresh per run) with the given waiting strategy.
fn elimination_counters(strategy: WaitStrategy) -> Vec<CounterFactory> {
    fn arena(strategy: WaitStrategy) -> EliminationConfig {
        EliminationConfig { strategy, ..EliminationConfig::default() }
    }
    vec![
        (
            format!("C(8,24)+elim/{strategy}"),
            Box::new(move || {
                let net = counting_network(8, 24).expect("valid");
                Box::new(EliminationCounter::with_config(
                    NetworkCounter::new("C(8,24)", &net),
                    arena(strategy),
                ))
            }),
        ),
        (
            format!("prism DiffTree[8]+elim/{strategy}"),
            Box::new(move || {
                Box::new(EliminationCounter::with_config(
                    DiffractingCounter::new(8, 4, 64),
                    arena(strategy),
                ))
            }),
        ),
        (
            format!("central+elim/{strategy}"),
            Box::new(move || {
                Box::new(EliminationCounter::with_config(CentralCounter::new(), arena(strategy)))
            }),
        ),
        (
            format!("mutex+elim/{strategy}"),
            Box::new(move || {
                Box::new(EliminationCounter::with_config(LockCounter::new(), arena(strategy)))
            }),
        ),
    ]
}

#[test]
fn torture_matrix_mixed_batches_through_elimination_hand_out_the_exact_range() {
    // The restriction-lifting matrix with its waiting-strategy axis:
    // 8 threads, *random* batch sizes (`1..=8`, per-thread deterministic
    // streams), an op count with no divisibility relationship to any
    // output width, all four counters, all six scenarios, all three
    // waiting strategies (spin, spin-yield, park). Through the
    // elimination layer the uniqueness and exact-range online checks must
    // pass unconditionally — however the offers wait.
    let ops_per_thread = 24 * ops_scale() + 7; // deliberately not a multiple of anything
    for strategy in WaitStrategy::ALL {
        for (name, make) in elimination_counters(strategy) {
            for scenario in scenarios() {
                let config = StressConfig {
                    threads: THREADS,
                    ops_per_thread,
                    batch: Batching::Mixed { max_k: 8, seed: 0xE11A },
                    scenario,
                    record_tokens: false,
                };
                let report = run_stress(make().as_ref(), &config);
                assert!(
                    report.is_exact_range(),
                    "{name} with mixed batches under {} broke the counting contract: {report:?}",
                    scenario.label()
                );
                assert_eq!(report.total_values, config.total_values());
            }
        }
    }
}

#[test]
fn centralized_counters_are_linearizable_on_real_hardware() {
    // The central/mutex counters assign the value at a point between the
    // two timestamps, so non-overlapping operations can never invert
    // values: measured violations must be exactly zero.
    let ops_per_thread = 24 * ops_scale();
    for (name, make) in [
        ("central", Box::new(CentralCounter::new()) as Box<dyn SharedCounter>),
        ("mutex", Box::new(LockCounter::new())),
    ] {
        let config = StressConfig {
            threads: THREADS,
            ops_per_thread,
            batch: Batching::Fixed(1),
            scenario: Scenario::Steady,
            record_tokens: true,
        };
        let report = run_stress(make.as_ref(), &config);
        assert_eq!(
            report.linearizability_violations,
            Some(0),
            "{name} must be linearizable: {report:?}"
        );
        assert!(report.is_exact_range());
    }
}

#[test]
fn network_counters_report_a_linearizability_measurement() {
    // Counting networks are not linearizable in general (Section 1.4.2);
    // on real hardware a given run may or may not exhibit a violation, so
    // the harness measures rather than asserts. The measurement must be
    // present and the counting contract must hold regardless.
    let net = counting_network(8, 24).expect("valid");
    let counter = NetworkCounter::new("C(8,24)", &net);
    let config = StressConfig {
        threads: THREADS,
        ops_per_thread: 24 * ops_scale(),
        batch: Batching::Fixed(1),
        scenario: Scenario::Bursty { phases: 4 },
        record_tokens: true,
    };
    let report = run_stress(&counter, &config);
    assert!(report.linearizability_violations.is_some());
    assert!(report.is_exact_range(), "{report:?}");
}

#[test]
fn skew_extremes_funnel_every_thread_onto_one_wire() {
    // groups = 1 is the worst skew: all 8 threads enter on input wire 0.
    let net = counting_network(8, 8).expect("valid");
    let counter = NetworkCounter::new("C(8,8)", &net);
    let config = StressConfig {
        threads: THREADS,
        ops_per_thread: 24 * ops_scale(),
        batch: Batching::Fixed(1),
        scenario: Scenario::Skewed { groups: 1 },
        record_tokens: false,
    };
    let report = run_stress(&counter, &config);
    assert!(report.is_exact_range(), "{report:?}");
}

#[test]
fn churn_with_wide_stagger_still_counts_exactly() {
    // A coarse stagger makes early threads finish before late ones start —
    // maximal arrival/departure churn.
    let counter = DiffractingCounter::new(8, 2, 16);
    let config = StressConfig {
        threads: THREADS,
        ops_per_thread: 24 * ops_scale().min(10),
        batch: Batching::Fixed(1),
        scenario: Scenario::Churn { stagger_micros: 2_000 },
        record_tokens: false,
    };
    let report = run_stress(&counter, &config);
    assert!(report.is_exact_range(), "{report:?}");
}
