//! Experiment E4: smoothing properties.
//!
//! Lemma 5.2: the forward butterfly `D(w)` is `lg w`-smoothing.
//! Lemma 6.6: the prefix `N_a,b = C'(w, t)` is `s`-smoothing for
//! `s = ⌊w·lgw/t⌋ + 2`. Lemma 2.5: once a layer's input is `k`-smooth, the
//! output of every subsequent regular layer stays `k`-smooth.

use counting_networks::efficient::{
    backward_butterfly, counting_network, counting_prefix, forward_butterfly,
};
use counting_networks::net::properties::observed_smoothness;
use counting_networks::net::{is_k_smooth, is_smoothing_network_randomized, quiescent_output};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn butterflies_are_lgw_smoothing() {
    let mut rng = StdRng::seed_from_u64(41);
    for w in [2usize, 4, 8, 16, 32, 64] {
        let k = w.trailing_zeros() as u64;
        let d = forward_butterfly(w).expect("valid");
        let e = backward_butterfly(w).expect("valid");
        assert!(is_smoothing_network_randomized(&d, k, 150, 300, &mut rng), "D({w})");
        assert!(is_smoothing_network_randomized(&e, k, 150, 300, &mut rng), "E({w})");
    }
}

#[test]
fn prefix_smoothness_obeys_lemma_6_6() {
    let mut rng = StdRng::seed_from_u64(42);
    for (w, t) in [(4usize, 4usize), (4, 8), (8, 8), (8, 16), (8, 24), (16, 16), (16, 64), (32, 32)]
    {
        let lgw = w.trailing_zeros() as usize;
        let s = (w * lgw / t) as u64 + 2;
        let net = counting_prefix(w, t).expect("valid");
        let observed = observed_smoothness(&net, 200, 200, &mut rng);
        assert!(
            observed <= s,
            "C'({w},{t}): observed smoothness {observed} exceeds the Lemma 6.6 bound {s}"
        );
    }
}

#[test]
fn wider_output_improves_prefix_smoothness() {
    // The bound s = ⌊w·lgw/t⌋ + 2 falls to 2 once t >= w·lgw; empirically
    // the observed spread of C'(w, t) shrinks as t grows.
    let mut rng = StdRng::seed_from_u64(43);
    let w = 16usize;
    let narrow = counting_prefix(w, w).expect("valid");
    let wide = counting_prefix(w, w * 8).expect("valid");
    let s_narrow = observed_smoothness(&narrow, 300, 500, &mut rng);
    let s_wide = observed_smoothness(&wide, 300, 500, &mut rng);
    assert!(
        s_wide <= s_narrow,
        "smoothness should not get worse as t grows: {s_wide} vs {s_narrow}"
    );
    assert!(s_wide <= 2, "for t = 8w the Lemma 6.6 bound is 2, observed {s_wide}");
}

#[test]
fn counting_network_output_is_1_smooth_everywhere() {
    // A step sequence is in particular 1-smooth; the full network output
    // must always be 1-smooth (and step).
    let mut rng = StdRng::seed_from_u64(44);
    for (w, t) in [(8usize, 8usize), (8, 16), (16, 16), (16, 64)] {
        let net = counting_network(w, t).expect("valid");
        for _ in 0..100 {
            let input: Vec<u64> = (0..w).map(|_| rng.gen_range(0..200)).collect();
            let out = quiescent_output(&net, &input);
            assert!(is_k_smooth(&out, 1));
        }
    }
}

#[test]
fn smoothness_is_preserved_by_subsequent_regular_layers() {
    // Lemma 2.5 exercised end-to-end: feed the (lg w)-smooth output of a
    // butterfly into another butterfly; the result must remain
    // (lg w)-smooth.
    let mut rng = StdRng::seed_from_u64(45);
    let w = 16usize;
    let k = w.trailing_zeros() as u64;
    let d = forward_butterfly(w).expect("valid");
    let cascade = d.cascade(&d).expect("same width");
    assert!(is_smoothing_network_randomized(&cascade, k, 200, 300, &mut rng));
}
