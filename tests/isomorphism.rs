//! Experiment E9: isomorphism results (Section 2.3 and Lemma 5.3).

use counting_networks::efficient::{backward_butterfly, counting_prefix, forward_butterfly};
use counting_networks::net::{
    find_isomorphism, is_smoothing_network_randomized, verify_isomorphism, NetworkMapping,
    Permutation,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn lemma_5_3_backward_and_forward_butterflies_are_isomorphic() {
    for w in [1usize, 2, 4, 8, 16] {
        let d = forward_butterfly(w).expect("valid");
        let e = backward_butterfly(w).expect("valid");
        let mapping = find_isomorphism(&d, &e);
        assert!(mapping.is_some(), "D({w}) and E({w}) must be isomorphic");
        let mapping = mapping.expect("just checked");
        assert!(verify_isomorphism(&d, &e, &mapping));
    }
}

#[test]
fn butterflies_are_not_isomorphic_across_widths() {
    let d8 = forward_butterfly(8).expect("valid");
    let d16 = forward_butterfly(16).expect("valid");
    assert!(find_isomorphism(&d8, &d16).is_none());
}

#[test]
fn prefix_with_regular_last_layer_is_isomorphic_to_backward_butterfly() {
    // Lemma 6.6's proof: C''(w) — the prefix C'(w, t) with its last layer
    // widened back to (2,2)-balancers — is a backward butterfly. For
    // t = w the prefix already *is* C''(w).
    for w in [2usize, 4, 8, 16] {
        let prefix = counting_prefix(w, w).expect("valid");
        let e = backward_butterfly(w).expect("valid");
        let mapping = find_isomorphism(&prefix, &e);
        assert!(mapping.is_some(), "C'({w},{w}) should be a backward butterfly");
    }
}

#[test]
fn lemma_2_8_isomorphic_networks_share_smoothing_behaviour() {
    // D(w) is lgw-smoothing; E(w), being isomorphic, must be too —
    // checked directly rather than through the lemma.
    let mut rng = StdRng::seed_from_u64(51);
    for w in [4usize, 8, 16, 32] {
        let k = w.trailing_zeros() as u64;
        let e = backward_butterfly(w).expect("valid");
        assert!(is_smoothing_network_randomized(&e, k, 200, 200, &mut rng));
    }
}

#[test]
fn permutation_machinery_of_section_2_3() {
    // π(x) is k-smooth when x is (Lemma 2.6), and π^R(π(i)) = i.
    let p = Permutation::new(vec![3, 1, 4, 0, 2]);
    let inv = p.inverse();
    for i in 0..5 {
        assert_eq!(inv.apply(p.apply(i)), i);
    }
    let x = vec![7u64, 7, 8, 8, 7];
    let y = p.apply_to_sequence(&x);
    assert_eq!(x.iter().sum::<u64>(), y.iter().sum::<u64>());
    assert!(counting_networks::net::is_k_smooth(&y, 1));
}

#[test]
fn identity_mapping_verifies_on_any_network() {
    let d = forward_butterfly(8).expect("valid");
    let id = NetworkMapping { mapping: (0..d.num_balancers()).collect() };
    assert!(verify_isomorphism(&d, &d, &id));
    // A transposition of two balancers in different layers must fail.
    if d.num_balancers() >= 8 {
        let mut bad = (0..d.num_balancers()).collect::<Vec<_>>();
        bad.swap(0, d.num_balancers() - 1);
        assert!(!verify_isomorphism(&d, &d, &NetworkMapping { mapping: bad }));
    }
}
