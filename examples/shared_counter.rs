//! Shared-counter workload: the motivating application of the paper.
//!
//! A pool of threads hammers a Fetch&Increment counter. We compare the
//! network-backed counters (the paper's `C(w, t)` at `t = w` and
//! `t = w·lgw`, the bitonic and periodic networks) against a centralized
//! atomic counter and a mutex counter, verifying that every implementation
//! hands out each value exactly once and reporting the sustained
//! throughput.
//!
//! Run with: `cargo run --release --example shared_counter`

use std::collections::HashSet;
use std::sync::Mutex;

use counting_networks::baseline::{bitonic_counting_network, periodic_counting_network};
use counting_networks::efficient::counting_network;
use counting_networks::runtime::{
    measure_throughput, CentralCounter, DiffractingCounter, LockCounter, NetworkCounter,
    SharedCounter,
};

/// Drives the counter with `threads` threads doing `ops` operations each
/// and checks that the handed-out values are exactly `0..threads*ops`.
fn verify_uniqueness<C: SharedCounter>(counter: &C, threads: usize, ops: usize) -> bool {
    let collected = Mutex::new(Vec::with_capacity(threads * ops));
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let collected = &collected;
            scope.spawn(move || {
                let mut local = Vec::with_capacity(ops);
                for _ in 0..ops {
                    local.push(counter.next(tid));
                }
                collected.lock().expect("not poisoned").extend(local);
            });
        }
    });
    let values = collected.into_inner().expect("not poisoned");
    let expected = (threads * ops) as u64;
    let set: HashSet<u64> = values.iter().copied().collect();
    set.len() as u64 == expected && values.iter().all(|&v| v < expected)
}

fn main() {
    let w = 8usize;
    let lgw = w.trailing_zeros() as usize;
    let threads = std::thread::available_parallelism().map_or(8, |p| p.get());
    let ops_per_thread = 20_000u64;

    println!("Fetch&Increment shared counter comparison");
    println!("  threads        : {threads}");
    println!("  ops per thread : {ops_per_thread}");
    println!();

    let networks = vec![
        (format!("C({w},{w})"), counting_network(w, w).expect("valid")),
        (format!("C({w},{})", w * lgw), counting_network(w, w * lgw).expect("valid")),
        (format!("Bitonic[{w}]"), bitonic_counting_network(w).expect("valid")),
        (format!("Periodic[{w}]"), periodic_counting_network(w).expect("valid")),
    ];

    let mut counters: Vec<Box<dyn SharedCounter>> = Vec::new();
    for (name, net) in &networks {
        counters.push(Box::new(NetworkCounter::new(name.clone(), net)));
    }
    counters.push(Box::new(DiffractingCounter::new(w, 8, 128)));
    counters.push(Box::new(CentralCounter::new()));
    counters.push(Box::new(LockCounter::new()));

    println!("{:<16} {:>14} {:>12}", "counter", "ops/second", "unique 0..m");
    for counter in &counters {
        let m = measure_throughput(counter.as_ref(), threads, ops_per_thread);
        // Uniqueness is checked on a fresh, smaller run so the printed
        // throughput is not polluted by the bookkeeping.
        let ok = match counter.describe().as_str() {
            name if name.starts_with("C(")
                || name.starts_with("Bitonic")
                || name.starts_with("Periodic") =>
            {
                let net = &networks.iter().find(|(n, _)| n == name).expect("known").1;
                verify_uniqueness(&NetworkCounter::new(name.to_owned(), net), threads, 2_000)
            }
            name if name.starts_with("diffracting") => {
                verify_uniqueness(&DiffractingCounter::new(w, 8, 128), threads, 2_000)
            }
            "central fetch_add" => verify_uniqueness(&CentralCounter::new(), threads, 2_000),
            _ => verify_uniqueness(&LockCounter::new(), threads, 2_000),
        };
        let rate = m.ops_per_second.map_or_else(|| "n/a".to_owned(), |r| format!("{r:.0}"));
        println!("{:<16} {:>14} {:>12}", m.counter, rate, ok);
    }

    println!();
    println!(
        "Note: on a machine with few cores the central fetch_add usually wins on raw\n\
         throughput; the counting networks win on *contention* — no single memory\n\
         location is touched by every operation — which is what the paper's\n\
         stall-model analysis (and the contention_study example) quantifies."
    );
}
