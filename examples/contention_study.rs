//! Contention study: reproduce the paper's central comparison in the
//! stall-counting model.
//!
//! Sweeps the concurrency `n` and measures the amortized contention
//! (stalls per token) of `C(w, w)`, `C(w, w·lgw)`, the bitonic network,
//! the periodic network and the diffracting tree, under the lock-step
//! (round-robin) schedule — the high-contention regime of Section 6.
//! The measured numbers sit next to the theoretical bounds so the shape of
//! Theorem 6.7 (and the `lg w` improvement at `t = w·lgw`) is visible
//! directly.
//!
//! Run with: `cargo run --release --example contention_study`

use counting_networks::baseline::{
    bitonic_counting_network, diffracting_tree, periodic_counting_network,
};
use counting_networks::efficient::{
    bitonic_contention_estimate, counting_network, cwt_contention_bound,
    periodic_contention_estimate,
};
use counting_networks::sim::{measure_contention, SchedulerKind};

fn main() {
    let w = 16usize;
    let lgw = w.trailing_zeros() as usize;
    let tokens_per_process = 60u64;
    let concurrencies = [w / 2, w, 2 * w, 4 * w, 8 * w, 16 * w];

    let networks = vec![
        (format!("C({w},{w})"), counting_network(w, w).expect("valid")),
        (format!("C({w},{})", w * lgw), counting_network(w, w * lgw).expect("valid")),
        (format!("Bitonic[{w}]"), bitonic_counting_network(w).expect("valid")),
        (format!("Periodic[{w}]"), periodic_counting_network(w).expect("valid")),
        (format!("DiffTree[{w}]"), diffracting_tree(w).expect("valid")),
    ];

    println!("Amortized contention (stalls per token), round-robin schedule, w = {w}");
    print!("{:<16}", "network \\ n");
    for n in concurrencies {
        print!("{n:>10}");
    }
    println!();
    for (name, net) in &networks {
        print!("{name:<16}");
        for n in concurrencies {
            let m = tokens_per_process * n as u64;
            let report = measure_contention(net, n, m, SchedulerKind::RoundRobin, 1);
            print!("{:>10.1}", report.amortized_contention);
        }
        println!();
    }

    println!();
    println!("Theoretical references at the same parameters:");
    print!("{:<16}", "bound \\ n");
    for n in concurrencies {
        print!("{n:>10}");
    }
    println!();
    type BoundFn = Box<dyn Fn(usize) -> f64>;
    let bounds: Vec<(String, BoundFn)> = vec![
        (format!("Thm6.7 t={w}"), Box::new(move |n| cwt_contention_bound(n, w, w))),
        (format!("Thm6.7 t={}", w * lgw), Box::new(move |n| cwt_contention_bound(n, w, w * lgw))),
        ("bitonic est".into(), Box::new(move |n| bitonic_contention_estimate(n, w))),
        ("periodic est".into(), Box::new(move |n| periodic_contention_estimate(n, w))),
    ];
    for (name, f) in &bounds {
        print!("{name:<16}");
        for n in concurrencies {
            print!("{:>10.1}", f(n));
        }
        println!();
    }

    println!();
    println!(
        "Reading the table: at high concurrency the wide-output network C({w},{})\n\
         has the lowest measured contention of the counting networks, matching the\n\
         paper's claim that choosing t = w·lgw improves the bitonic network by a\n\
         factor of lg w; the diffracting tree degrades linearly in n because every\n\
         token crosses the root balancer.",
        w * lgw
    );
}
