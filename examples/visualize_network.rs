//! Render the paper's constructions as Graphviz figures.
//!
//! Writes DOT files for the networks depicted in Figs. 1–3 and 6 of the
//! paper (`C(4,8)`, `C(8,16)`, `M(8,4)`, `M(16,4)`, the butterfly and the
//! baselines) into `target/figures/`. Turn them into SVGs with e.g.
//! `dot -Tsvg target/figures/c_4_8.dot -o c_4_8.svg`.
//!
//! Run with: `cargo run --example visualize_network`

use std::fs;
use std::path::{Path, PathBuf};

use counting_networks::baseline::{bitonic_counting_network, periodic_counting_network};
use counting_networks::efficient::{counting_network, forward_butterfly, merging_network};
use counting_networks::net::{to_dot, DotOptions, Network};

fn write_figure(dir: &Path, file: &str, title: &str, network: &Network) {
    let options = DotOptions { name: title.to_owned(), rank_by_layer: true };
    let dot = to_dot(network, &options);
    let path = dir.join(file);
    fs::write(&path, dot).expect("write DOT file");
    println!(
        "{:<28} -> {} ({} balancers, depth {})",
        title,
        path.display(),
        network.num_balancers(),
        network.depth()
    );
}

fn main() {
    let dir = PathBuf::from("target/figures");
    fs::create_dir_all(&dir).expect("create figures directory");

    write_figure(&dir, "c_4_8.dot", "C(4,8) — Fig. 1", &counting_network(4, 8).expect("valid"));
    write_figure(&dir, "c_8_16.dot", "C(8,16) — Fig. 3", &counting_network(8, 16).expect("valid"));
    write_figure(&dir, "m_8_4.dot", "M(8,4) — Fig. 6", &merging_network(8, 4).expect("valid"));
    write_figure(&dir, "m_16_4.dot", "M(16,4) — Fig. 6", &merging_network(16, 4).expect("valid"));
    write_figure(&dir, "butterfly_8.dot", "D(8) — Fig. 14", &forward_butterfly(8).expect("valid"));
    write_figure(&dir, "bitonic_8.dot", "Bitonic[8]", &bitonic_counting_network(8).expect("valid"));
    write_figure(
        &dir,
        "periodic_8.dot",
        "Periodic[8]",
        &periodic_counting_network(8).expect("valid"),
    );

    println!("\nRender with: dot -Tsvg target/figures/c_4_8.dot -o c_4_8.svg");
}
