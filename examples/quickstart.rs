//! Quickstart: build the counting network of Fig. 1 (`C(4, 8)`), inspect
//! its structure, push tokens through it, and verify the step property and
//! the Fetch&Increment values — everything the paper's introduction
//! promises, in a few lines.
//!
//! Run with: `cargo run --example quickstart`

use counting_networks::efficient::{counting_depth, counting_network, cwt_contention_bound};
use counting_networks::net::{assign_counter_values, is_step, quiescent_output, TokenExecutor};

fn main() {
    let (w, t) = (4usize, 8usize);
    let net = counting_network(w, t).expect("w is a power of two and t a multiple of w");

    println!("C({w}, {t}) — the counting network of Fig. 1 (right)");
    println!("  input width   : {}", net.input_width());
    println!("  output width  : {}", net.output_width());
    println!("  depth         : {} (Theorem 4.1 predicts {})", net.depth(), counting_depth(w));
    println!("  balancers     : {}", net.num_balancers());
    println!("  census        : {:?}", net.balancer_census());
    println!();

    // The input distribution drawn in Fig. 1: 4, 2, 3, 4 tokens per wire.
    let input = [4u64, 2, 3, 4];
    let output = quiescent_output(&net, &input);
    println!("tokens per input wire : {input:?}");
    println!("tokens per output wire: {output:?}");
    println!("step property holds   : {}", is_step(&output));
    println!();

    // Fetch&Increment: output wire i hands out values i, i+t, i+2t, ...
    let values = assign_counter_values(&output);
    for (wire, vals) in values.iter().enumerate() {
        println!("  output wire {wire}: counter values {vals:?}");
    }
    let mut all: Vec<u64> = values.into_iter().flatten().collect();
    all.sort_unstable();
    println!("all values sorted     : {all:?} (exactly 0..{})", all.len());
    println!();

    // The same run, token by token, with explicit balancer states.
    let mut exec = TokenExecutor::new(&net);
    exec.inject_sequence(&input);
    println!("token-by-token executor agrees: {}", exec.output_counts() == output);

    // What the theory says about contention if 64 processes used this
    // network concurrently.
    let n = 64;
    println!(
        "Theorem 6.7 contention bound at n = {n}: {:.1} stalls/token",
        cwt_contention_bound(n, w, t)
    );
}
