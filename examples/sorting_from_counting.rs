//! The sorting-network byproduct of Section 7.
//!
//! Replacing every balancer of the regular counting network `C(w, w)` with
//! a comparator yields a sorting network of depth `O(lg²w)`. This example
//! derives that network, verifies it with the 0–1 principle, sorts some
//! data with it, and compares its depth and size against the bitonic and
//! periodic sorting networks at several widths.
//!
//! Run with: `cargo run --release --example sorting_from_counting`

use counting_networks::baseline::{bitonic_counting_network, periodic_counting_network};
use counting_networks::efficient::counting_network;
use counting_networks::sorting::{is_sorting_network_exhaustive, ComparatorNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Derive a sorting network from C(16, 16) and verify it exhaustively
    // with the 0-1 principle (2^16 boolean inputs).
    let w = 16usize;
    let network = counting_network(w, w).expect("valid parameters");
    let sorter = ComparatorNetwork::from_balancing(network).expect("C(w,w) is regular");
    println!("Sorting network derived from C({w},{w})");
    println!("  width        : {}", sorter.width());
    println!("  depth        : {}", sorter.depth());
    println!("  comparators  : {}", sorter.size());
    println!("  0-1 verified : {}", is_sorting_network_exhaustive(&sorter));
    println!();

    // Sort some data (non-increasing order, matching the step property).
    let mut rng = StdRng::seed_from_u64(2024);
    let data: Vec<u32> = (0..w).map(|_| rng.gen_range(0..1000)).collect();
    let sorted = sorter.apply(&data);
    println!("  input : {data:?}");
    println!("  output: {sorted:?}");
    assert!(sorted.windows(2).all(|p| p[0] >= p[1]));
    println!();

    // Depth/size comparison across widths.
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>14}",
        "width", "C(w,w) depth", "bitonic depth", "periodic depth", "C(w,w) compars"
    );
    for k in 2..=7 {
        let w = 1usize << k;
        let ours = ComparatorNetwork::from_balancing(counting_network(w, w).expect("valid"))
            .expect("regular");
        let bitonic =
            ComparatorNetwork::from_balancing(bitonic_counting_network(w).expect("valid"))
                .expect("regular");
        let periodic =
            ComparatorNetwork::from_balancing(periodic_counting_network(w).expect("valid"))
                .expect("regular");
        println!(
            "{:<8} {:>12} {:>12} {:>14} {:>14}",
            w,
            ours.depth(),
            bitonic.depth(),
            periodic.depth(),
            ours.size()
        );
    }
    println!();
    println!(
        "The derived network matches the bitonic sorter's depth lgw(lgw+1)/2 at every\n\
         width and improves on the periodic sorter's lg²w, as stated in Section 7."
    );
}
