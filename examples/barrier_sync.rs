//! Barrier synchronization and load balancing on top of a counting
//! network — the two motivating applications named in the paper's
//! introduction ("distributed problems such as load balancing and barrier
//! synchronization can be expressed and solved as counting problems").
//!
//! * **Sense-reversing barrier**: each of `P` threads performs a
//!   Fetch&Increment per phase; the thread that draws the last value of the
//!   phase flips the phase flag, releasing everybody.
//! * **Load balancing**: a pool of workers pulls work-item indices from a
//!   shared counter; the counting network spreads the index-dispensing
//!   traffic over many memory locations instead of one hot atomic.
//!
//! Run with: `cargo run --release --example barrier_sync`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use counting_networks::efficient::counting_network;
use counting_networks::runtime::{NetworkCounter, SharedCounter};

/// A sense-reversing barrier whose arrival counter is a counting network.
struct NetworkBarrier {
    counter: NetworkCounter,
    participants: u64,
    /// Phase parity flag flipped by the last arriver of each phase.
    sense: AtomicBool,
}

impl NetworkBarrier {
    fn new(counter: NetworkCounter, participants: u64) -> Self {
        Self { counter, participants, sense: AtomicBool::new(false) }
    }

    /// Blocks (by spinning) until all participants of the current phase
    /// have arrived. Returns the phase index.
    fn wait(&self, thread_id: usize) -> u64 {
        let ticket = self.counter.next(thread_id);
        let phase = ticket / self.participants;
        let local_sense = phase % 2 == 1;
        if (ticket + 1).is_multiple_of(self.participants) {
            // Last arriver of this phase: release everyone.
            self.sense.store(local_sense, Ordering::Release);
        } else {
            while self.sense.load(Ordering::Acquire) != local_sense {
                std::hint::spin_loop();
            }
        }
        phase
    }
}

fn barrier_demo(threads: usize, phases: u64) {
    let net = counting_network(8, 24).expect("valid parameters");
    let barrier = NetworkBarrier::new(NetworkCounter::new("C(8,24)", &net), threads as u64);
    let out_of_phase = AtomicU64::new(0);
    let phase_marker = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for tid in 0..threads {
            let barrier = &barrier;
            let out_of_phase = &out_of_phase;
            let phase_marker = &phase_marker;
            scope.spawn(move || {
                for expected_phase in 0..phases {
                    // Everybody must observe the same phase number, and no
                    // thread may observe a marker from a *later* phase
                    // before the barrier releases it.
                    let phase = barrier.wait(tid);
                    if phase != expected_phase {
                        out_of_phase.fetch_add(1, Ordering::Relaxed);
                    }
                    phase_marker.fetch_max(phase, Ordering::Relaxed);
                }
            });
        }
    });
    println!("barrier: {threads} threads × {phases} phases");
    println!("  phase mismatches observed : {}", out_of_phase.load(Ordering::Relaxed));
    println!("  final phase               : {}", phase_marker.load(Ordering::Relaxed));
    assert_eq!(out_of_phase.load(Ordering::Relaxed), 0);
}

fn load_balancing_demo(threads: usize, items: u64) {
    let net = counting_network(8, 24).expect("valid parameters");
    let dispenser = NetworkCounter::new("C(8,24)", &net);
    // Each "work item" is just a cell that must be processed exactly once.
    let processed: Vec<AtomicU64> = (0..items).map(|_| AtomicU64::new(0)).collect();
    let per_thread_counts = std::sync::Mutex::new(vec![0u64; threads]);

    std::thread::scope(|scope| {
        for tid in 0..threads {
            let dispenser = &dispenser;
            let processed = &processed;
            let per_thread_counts = &per_thread_counts;
            scope.spawn(move || {
                let mut done = 0u64;
                loop {
                    let index = dispenser.next(tid);
                    if index >= items {
                        break;
                    }
                    processed[index as usize].fetch_add(1, Ordering::Relaxed);
                    done += 1;
                }
                per_thread_counts.lock().expect("not poisoned")[tid] = done;
            });
        }
    });

    let exactly_once = processed.iter().all(|c| c.load(Ordering::Relaxed) == 1);
    let counts = per_thread_counts.into_inner().expect("not poisoned");
    println!("load balancing: {items} items over {threads} workers");
    println!("  every item processed exactly once : {exactly_once}");
    println!("  per-worker item counts            : {counts:?}");
    assert!(exactly_once);
}

fn main() {
    let threads = std::thread::available_parallelism().map_or(8, |p| p.get()).min(16);
    barrier_demo(threads, 200);
    println!();
    load_balancing_demo(threads, 100_000);
}
