//! # counting-networks
//!
//! A complete implementation of **"An Efficient Counting Network"**
//! (Busch & Mavronicolas, IPPS/SPDP'98; Theoretical Computer Science 411
//! (2010) 3001–3030), together with everything needed to evaluate it: the
//! classic baselines, a contention simulator under the
//! Dwork–Herlihy–Waarts stall model, a lock-free concurrent runtime, and
//! the sorting-network byproduct.
//!
//! This facade crate re-exports the workspace's public API under stable
//! module names:
//!
//! * [`net`] (crate `balnet`) — balancers, topologies, quiescent
//!   evaluation, step/smooth sequences, isomorphism;
//! * [`efficient`] (crate `counting`) — the paper's `C(w, t)`, `M(t, δ)`,
//!   `L(w)`, butterflies, depth formulas and contention bounds;
//! * [`baseline`] (crate `baselines`) — bitonic, periodic, diffracting
//!   tree, central balancer;
//! * [`sim`] (crate `counting-sim`) — stall-counting contention simulator
//!   and schedulers;
//! * [`runtime`] (crate `counting-runtime`) — compiled lock-free networks
//!   and Fetch&Increment counters driven by real threads;
//! * [`service`] (crate `counting-service`) — the multi-tenant serving
//!   layer: a sharded registry of named counters plus id-lease, ticket
//!   and rate-limit workload adapters;
//! * [`server`] (crate `counting-server`) — the HTTP/1.1 admission and
//!   id service: a blocking worker-pool server exposing the service
//!   layer's adapters over real sockets, plus its keep-alive test
//!   client;
//! * [`cluster`] (crate `counting-cluster`) — the distributed layer:
//!   nodes lease contiguous value blocks from a durable coordinator over
//!   a lossy network, with membership churn, crash-restart watermark
//!   recovery, and a deterministic fault-injecting simulation that
//!   checks global uniqueness and the exact range;
//! * [`sorting`] (crate `sortnet`) — comparator networks derived from the
//!   counting constructions.
//!
//! ## Quick start
//!
//! ```
//! use counting_networks::efficient::counting_network;
//! use counting_networks::net::{quiescent_output, is_step};
//! use counting_networks::runtime::{NetworkCounter, SharedCounter};
//!
//! // Build the network of Fig. 1: input width 4, output width 8.
//! let net = counting_network(4, 8).expect("valid parameters");
//! assert_eq!(net.depth(), 3);
//!
//! // Quiescent behaviour: any input distribution yields a step output.
//! let out = quiescent_output(&net, &[4, 2, 3, 4]);
//! assert!(is_step(&out));
//!
//! // Concurrent behaviour: a lock-free Fetch&Increment counter.
//! let counter = NetworkCounter::new("C(4,8)", &net);
//! let v0 = counter.next(0);
//! let v1 = counter.next(1);
//! assert_ne!(v0, v1);
//! ```

#![warn(missing_docs)]

/// Balancing-network substrate (re-export of the `balnet` crate).
pub mod net {
    pub use balnet::*;
}

/// The paper's constructions and bounds (re-export of the `counting`
/// crate).
pub mod efficient {
    pub use counting::*;
}

/// Baseline counting networks (re-export of the `baselines` crate).
pub mod baseline {
    pub use baselines::*;
}

/// Contention simulation under the stall model (re-export of the
/// `counting-sim` crate).
pub mod sim {
    pub use counting_sim::*;
}

/// Concurrent shared-memory execution (re-export of the
/// `counting-runtime` crate).
pub mod runtime {
    pub use counting_runtime::*;
}

/// Multi-tenant counter serving layer (re-export of the
/// `counting-service` crate).
pub mod service {
    pub use counting_service::*;
}

/// HTTP serving layer for the counter service (re-export of the
/// `counting-server` crate).
pub mod server {
    pub use counting_server::*;
}

/// Distributed counting cluster and its deterministic fault-injecting
/// simulation (re-export of the `counting-cluster` crate).
pub mod cluster {
    pub use counting_cluster::*;
}

/// Sorting networks derived from counting networks (re-export of the
/// `sortnet` crate).
pub mod sorting {
    pub use sortnet::*;
}
